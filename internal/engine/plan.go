package engine

import (
	"context"
	"fmt"
	"strings"
)

// Plan is a node of a physical source-query plan tree.  Plans are built by the
// query-reformulation layer and executed by Execute.  Each node can produce a
// canonical Signature; two plans with equal signatures compute the same result
// on every instance, which is what e-basic uses to cluster identical source
// queries and what the MQO substrate uses to find common subexpressions.
type Plan interface {
	// Signature returns the canonical rendering of the plan.
	Signature() string
	// Children returns the child plans (empty for leaves).
	Children() []Plan
}

// ScanPlan reads a base relation from the instance, qualifying its columns
// with the alias ("alias.column").  If Alias is empty the relation name is
// used.
type ScanPlan struct {
	Relation string
	Alias    string
}

// Signature implements Plan.
func (p *ScanPlan) Signature() string {
	if p.Alias != "" && p.Alias != p.Relation {
		return fmt.Sprintf("scan(%s as %s)", p.Relation, p.Alias)
	}
	return fmt.Sprintf("scan(%s)", p.Relation)
}

// Children implements Plan.
func (p *ScanPlan) Children() []Plan { return nil }

// MaterialPlan wraps an already-materialized relation (an intermediate result
// produced earlier, e.g. by o-sharing).  Its signature incorporates an
// identity label provided by the producer so that distinct intermediates do
// not collide.
type MaterialPlan struct {
	Rel   *Relation
	Label string
}

// Signature implements Plan.
func (p *MaterialPlan) Signature() string { return fmt.Sprintf("mat(%s)", p.Label) }

// Children implements Plan.
func (p *MaterialPlan) Children() []Plan { return nil }

// SelectPlan filters its child by a predicate.
type SelectPlan struct {
	Pred  Predicate
	Child Plan
}

// Signature implements Plan.
func (p *SelectPlan) Signature() string {
	return fmt.Sprintf("select[%s](%s)", p.Pred.String(), p.Child.Signature())
}

// Children implements Plan.
func (p *SelectPlan) Children() []Plan { return []Plan{p.Child} }

// ProjectPlan projects its child onto the named columns.
type ProjectPlan struct {
	Columns []string
	Child   Plan
}

// Signature implements Plan.
func (p *ProjectPlan) Signature() string {
	return fmt.Sprintf("project[%s](%s)", strings.Join(p.Columns, ","), p.Child.Signature())
}

// Children implements Plan.
func (p *ProjectPlan) Children() []Plan { return []Plan{p.Child} }

// ProductPlan is the Cartesian product of its children.
type ProductPlan struct {
	Left, Right Plan
}

// Signature implements Plan.
func (p *ProductPlan) Signature() string {
	return fmt.Sprintf("product(%s,%s)", p.Left.Signature(), p.Right.Signature())
}

// Children implements Plan.
func (p *ProductPlan) Children() []Plan { return []Plan{p.Left, p.Right} }

// JoinPlan is the equi-join of its children on LeftCol = RightCol.
type JoinPlan struct {
	LeftCol, RightCol string
	Left, Right       Plan
}

// Signature implements Plan.
func (p *JoinPlan) Signature() string {
	return fmt.Sprintf("join[%s=%s](%s,%s)", p.LeftCol, p.RightCol, p.Left.Signature(), p.Right.Signature())
}

// Children implements Plan.
func (p *JoinPlan) Children() []Plan { return []Plan{p.Left, p.Right} }

// AggregatePlan computes a single aggregate over its child.
type AggregatePlan struct {
	Func   AggFunc
	Column string
	Child  Plan
}

// Signature implements Plan.
func (p *AggregatePlan) Signature() string {
	return fmt.Sprintf("agg[%s(%s)](%s)", p.Func, p.Column, p.Child.Signature())
}

// Children implements Plan.
func (p *AggregatePlan) Children() []Plan { return []Plan{p.Child} }

// DistinctPlan removes duplicate rows from its child.
type DistinctPlan struct {
	Child Plan
}

// Signature implements Plan.
func (p *DistinctPlan) Signature() string {
	return fmt.Sprintf("distinct(%s)", p.Child.Signature())
}

// Children implements Plan.
func (p *DistinctPlan) Children() []Plan { return []Plan{p.Child} }

// CountOperators returns the number of operator nodes in the plan tree,
// excluding leaves (scans and materialized inputs), which matches the paper's
// notion of "source query operators".
func CountOperators(p Plan) int {
	if p == nil {
		return 0
	}
	n := 0
	switch p.(type) {
	case *ScanPlan, *MaterialPlan:
		// leaves are not operators
	default:
		n = 1
	}
	for _, c := range p.Children() {
		n += CountOperators(c)
	}
	return n
}

// Executor evaluates plans against an instance, optionally caching results of
// identical sub-plans (used by the MQO substrate to share common
// subexpressions) and recording statistics.
type Executor struct {
	DB    *Instance
	Stats *Stats
	// Cache maps plan signatures to materialized results.  When non-nil,
	// Execute reuses results for identical sub-plans instead of recomputing
	// them; cache hits do not count as executed operators.  A PlanCache may be
	// shared by several executors running concurrently — each shared
	// subexpression is still computed exactly once.
	Cache *PlanCache
	// Indexes is the shared base-relation index subsystem (usually the
	// instance's own, DB.Indexes()).  When non-nil, plan compilation serves
	// constant-equality selections directly above a scan from a per-column
	// hash index, and reuses the same index as a hash join's build table when
	// the build side is a bare or constant-filtered scan.  Answers are
	// bit-identical with or without it.  nil disables index use.
	Indexes *IndexCache
	// Batch selects the execution pipeline for uncached plans: 0 runs the
	// vectorized batch pipeline at DefaultBatchSize, a positive value runs it
	// at that many rows per batch, and a negative value falls back to the
	// tuple-at-a-time RowSource pipeline.  Purely a physical knob — answers
	// and logical operator statistics are identical across all settings.
	Batch int
	// Workers caps the parallelism of partitioned hash-join builds in the
	// batch pipeline.  Values below 2 (including 0, the default) build
	// sequentially; builds are partitioned only when the build side is large
	// enough to amortize the fan-out.  The built structure — and therefore
	// every answer — is byte-identical to a sequential build.
	Workers int
}

// NewExecutor returns an executor over the instance with a fresh Stats.
func NewExecutor(db *Instance) *Executor {
	return &Executor{DB: db, Stats: NewStats()}
}

// EnableCache turns on common-subexpression result caching.
func (e *Executor) EnableCache() { e.Cache = NewPlanCache() }

// EnableIndexes attaches the instance's shared index cache.
func (e *Executor) EnableIndexes() {
	if e.DB != nil {
		e.Indexes = e.DB.Indexes()
	}
}

// Execute evaluates the plan and returns its materialized result.
func (e *Executor) Execute(p Plan) (*Relation, error) {
	return e.ExecuteContext(context.Background(), p)
}

// ExecuteContext evaluates the plan under the context: operators check it
// periodically and the execution stops promptly with the context's error once
// it is cancelled or its deadline passes.
//
// Without a cache the plan is compiled into a streaming pipeline — the
// vectorized batch pipeline by default (see Batch), or the tuple-at-a-time
// RowSource pipeline when Batch is negative.  Either way, scan→select→project
// chains are fused and produce no intermediate Relations; only pipeline
// breakers (join build side, product inner side, distinct, aggregate) buffer
// rows, and the root materializes the result.  With a cache every node still
// materializes — the MQO substrate shares results per sub-plan signature,
// which requires each signature's Relation to exist.
func (e *Executor) ExecuteContext(ctx context.Context, p Plan) (*Relation, error) {
	if p == nil {
		return nil, fmt.Errorf("execute: nil plan")
	}
	if e.Cache != nil {
		return e.Cache.GetOrCompute(p.Signature(), func() (*Relation, error) {
			return e.executeMaterialized(ctx, p)
		})
	}
	if n, ok := p.(*MaterialPlan); ok {
		// Identity at the root: hand back the producer's relation unchanged.
		if n.Rel == nil {
			return nil, fmt.Errorf("materialized plan %q has nil relation", n.Label)
		}
		return n.Rel, nil
	}
	if e.Batch < 0 {
		src, err := e.compile(ctx, p)
		if err != nil {
			return nil, err
		}
		return Materialize(src)
	}
	if n, ok := p.(*ProjectPlan); ok {
		// Root projection — the shape every reformulated query ends in —
		// materializes fused: the child pipeline is drained to row headers and
		// the column gather runs once at the exact output size, instead of
		// carving per-batch tuples that the root would copy again.
		return e.executeBatchProjectRoot(ctx, n)
	}
	src, err := e.compileBatch(ctx, p)
	if err != nil {
		return nil, err
	}
	return MaterializeBatches(src)
}

// executeBatchProjectRoot compiles the projection's child as a batch pipeline
// and gathers the projected columns straight into the result relation.  Column
// resolution, error messages and recorded statistics are identical to the
// batchProject operator's.
func (e *Executor) executeBatchProjectRoot(ctx context.Context, n *ProjectPlan) (*Relation, error) {
	child, err := e.compileBatch(ctx, n.Child)
	if err != nil {
		return nil, err
	}
	cols := child.Columns()
	idx := make([]int, len(n.Columns))
	outCols := make([]string, len(n.Columns))
	for i, c := range n.Columns {
		j := lookupColumn(cols, c)
		if j < 0 {
			return nil, fmt.Errorf("project: column %q not found in %v", c, cols)
		}
		idx[i] = j
		outCols[i] = cols[j]
	}
	var rows []Tuple
	if err := drainBatches(child, &rows); err != nil {
		return nil, err
	}
	out := NewRelation(child.Name(), outCols)
	if len(rows) > 0 && contiguousIdx(idx) {
		// The drained headers are private to this call, so a contiguous
		// projection allocates nothing at all: each header is rewritten in
		// place into its capacity-clamped column window.
		j0, j1 := idx[0], idx[0]+len(idx)
		for lo := 0; lo < len(rows); lo += checkInterval {
			if lo > 0 {
				if err := canceled(ctx); err != nil {
					return nil, err
				}
			}
			hi := lo + checkInterval
			if hi > len(rows) {
				hi = len(rows)
			}
			for i := lo; i < hi; i++ {
				rows[i] = rows[i][j0:j1:j1]
			}
		}
		out.Rows = rows
	} else {
		// Non-contiguous projections still reuse the drained header slice as
		// the destination: projectRows rewrites each header in place after
		// gathering its values, so only the value slab is allocated.
		out.Rows = rows
		if err := projectRows(ctx, rows, idx, &out.Rows); err != nil {
			return nil, err
		}
	}
	e.Stats.record(OpKindProject, len(rows), len(out.Rows))
	return out, nil
}

// batchSize resolves the executor's configured batch size.
func (e *Executor) batchSize() int {
	if e.Batch > 0 {
		return e.Batch
	}
	return DefaultBatchSize
}

// compile lowers a plan node into a streaming row source.  Column references
// are resolved once here, so the per-row path does no name lookups.
func (e *Executor) compile(ctx context.Context, p Plan) (RowSource, error) {
	switch n := p.(type) {
	case *ScanPlan:
		base := e.DB.Relation(n.Relation)
		if base == nil {
			return nil, fmt.Errorf("scan: unknown relation %q", n.Relation)
		}
		alias := n.Alias
		if alias == "" {
			alias = n.Relation
		}
		return newScanSource(ctx, base, alias, e.Stats), nil
	case *MaterialPlan:
		if n.Rel == nil {
			return nil, fmt.Errorf("materialized plan %q has nil relation", n.Label)
		}
		return newMatSource(ctx, n.Rel.Name, n.Rel.Columns, n.Rel.Rows), nil
	case *SelectPlan:
		if e.Indexes != nil {
			src, ok, err := e.compileIndexedSelect(ctx, n)
			if err != nil {
				return nil, err
			}
			if ok {
				return src, nil
			}
		}
		child, err := e.compile(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		cols := child.Columns()
		bp, err := bindPredicate(n.Pred, func(name string) int { return lookupColumn(cols, name) }, cols)
		if err != nil {
			return nil, err
		}
		return &filterSource{ctx: ctx, src: child, pred: bp, stats: e.Stats}, nil
	case *ProjectPlan:
		child, err := e.compile(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		cols := child.Columns()
		idx := make([]int, len(n.Columns))
		outCols := make([]string, len(n.Columns))
		for i, c := range n.Columns {
			j := lookupColumn(cols, c)
			if j < 0 {
				return nil, fmt.Errorf("project: column %q not found in %v", c, cols)
			}
			idx[i] = j
			outCols[i] = cols[j]
		}
		return &projectSource{ctx: ctx, src: child, name: child.Name(), cols: outCols, idx: idx, stats: e.Stats}, nil
	case *ProductPlan:
		left, err := e.compile(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.compile(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return newProductSource(ctx, left, right, e.Stats), nil
	case *JoinPlan:
		left, err := e.compile(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		if e.Indexes != nil {
			src, ok, err := e.compileSharedJoin(ctx, n, left)
			if err != nil {
				return nil, err
			}
			if ok {
				return src, nil
			}
		}
		right, err := e.compile(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		li := lookupColumn(left.Columns(), n.LeftCol)
		if li < 0 {
			return nil, fmt.Errorf("join: column %q not found in %v", n.LeftCol, left.Columns())
		}
		ri := lookupColumn(right.Columns(), n.RightCol)
		if ri < 0 {
			return nil, fmt.Errorf("join: column %q not found in %v", n.RightCol, right.Columns())
		}
		return newJoinSource(ctx, left, right, li, ri, e.Stats), nil
	case *AggregatePlan:
		child, err := e.compile(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return newAggSource(ctx, child, n.Func, n.Column, e.Stats)
	case *DistinctPlan:
		child, err := e.compile(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return newDistinctSource(ctx, child, e.Stats), nil
	default:
		return nil, fmt.Errorf("execute: unsupported plan node %T", p)
	}
}

// compileBatch lowers a plan node into the vectorized batch pipeline.  It
// mirrors compile node for node — same column resolution order, same error
// messages, same index-serving decisions — so the two pipelines accept exactly
// the same plans and produce bit-identical results and operator statistics.
// Index-served selections stay row-at-a-time behind the rowsToBatches adapter.
func (e *Executor) compileBatch(ctx context.Context, p Plan) (BatchSource, error) {
	switch n := p.(type) {
	case *ScanPlan:
		base := e.DB.Relation(n.Relation)
		if base == nil {
			return nil, fmt.Errorf("scan: unknown relation %q", n.Relation)
		}
		alias := n.Alias
		if alias == "" {
			alias = n.Relation
		}
		return &batchScan{
			ctx: ctx, name: alias, cols: qualifiedScanColumns(base, alias),
			rows: base.Rows, size: e.batchSize(), stats: e.Stats, record: true,
		}, nil
	case *MaterialPlan:
		if n.Rel == nil {
			return nil, fmt.Errorf("materialized plan %q has nil relation", n.Label)
		}
		return &batchScan{
			ctx: ctx, name: n.Rel.Name, cols: n.Rel.Columns,
			rows: n.Rel.Rows, size: e.batchSize(), stats: e.Stats,
		}, nil
	case *SelectPlan:
		if e.Indexes != nil {
			src, ok, err := e.compileIndexedSelect(ctx, n)
			if err != nil {
				return nil, err
			}
			if ok {
				return &rowsToBatches{src: src, size: e.batchSize(), stats: e.Stats}, nil
			}
		}
		child, err := e.compileBatch(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		cols := child.Columns()
		vp, err := compileVecPredicate(n.Pred, func(name string) int { return lookupColumn(cols, name) }, cols)
		if err != nil {
			return nil, err
		}
		return &batchFilter{ctx: ctx, src: child, pred: vp, stats: e.Stats}, nil
	case *ProjectPlan:
		child, err := e.compileBatch(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		cols := child.Columns()
		idx := make([]int, len(n.Columns))
		outCols := make([]string, len(n.Columns))
		for i, c := range n.Columns {
			j := lookupColumn(cols, c)
			if j < 0 {
				return nil, fmt.Errorf("project: column %q not found in %v", c, cols)
			}
			idx[i] = j
			outCols[i] = cols[j]
		}
		return &batchProject{ctx: ctx, src: child, name: child.Name(), cols: outCols, idx: idx, stats: e.Stats}, nil
	case *ProductPlan:
		left, err := e.compileBatch(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.compileBatch(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		cols := make([]string, 0, len(left.Columns())+len(right.Columns()))
		cols = append(cols, left.Columns()...)
		cols = append(cols, right.Columns()...)
		return &batchProduct{
			ctx: ctx, left: left, right: right,
			name: left.Name() + "x" + right.Name(), cols: cols,
			size: e.batchSize(), stats: e.Stats,
		}, nil
	case *JoinPlan:
		left, err := e.compileBatch(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		if e.Indexes != nil {
			src, ok, err := e.compileBatchSharedJoin(ctx, n, left)
			if err != nil {
				return nil, err
			}
			if ok {
				return src, nil
			}
		}
		right, err := e.compileBatch(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		li := lookupColumn(left.Columns(), n.LeftCol)
		if li < 0 {
			return nil, fmt.Errorf("join: column %q not found in %v", n.LeftCol, left.Columns())
		}
		ri := lookupColumn(right.Columns(), n.RightCol)
		if ri < 0 {
			return nil, fmt.Errorf("join: column %q not found in %v", n.RightCol, right.Columns())
		}
		cols := make([]string, 0, len(left.Columns())+len(right.Columns()))
		cols = append(cols, left.Columns()...)
		cols = append(cols, right.Columns()...)
		return &batchJoin{
			ctx: ctx, left: left, right: right, li: li, ri: ri,
			name: left.Name() + "⋈" + right.Name(), cols: cols,
			size: e.batchSize(), workers: e.Workers, stats: e.Stats,
		}, nil
	case *AggregatePlan:
		child, err := e.compileBatch(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return newBatchAgg(ctx, child, n.Func, n.Column, e.Stats)
	case *DistinctPlan:
		child, err := e.compileBatch(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return &batchDistinct{ctx: ctx, src: child, seen: NewTupleSet(64), stats: e.Stats}, nil
	default:
		return nil, fmt.Errorf("execute: unsupported plan node %T", p)
	}
}

// executeMaterialized evaluates the plan node by node, materializing every
// intermediate result.  It is the execution mode of cached (MQO) executors,
// where each sub-plan signature's result must exist to be shared.
func (e *Executor) executeMaterialized(ctx context.Context, p Plan) (*Relation, error) {
	switch n := p.(type) {
	case *ScanPlan:
		base := e.DB.Relation(n.Relation)
		if base == nil {
			return nil, fmt.Errorf("scan: unknown relation %q", n.Relation)
		}
		alias := n.Alias
		if alias == "" {
			alias = n.Relation
		}
		e.Stats.record(OpKindScan, 0, len(base.Rows))
		return base.QualifyColumns(alias), nil
	case *MaterialPlan:
		if n.Rel == nil {
			return nil, fmt.Errorf("materialized plan %q has nil relation", n.Label)
		}
		return n.Rel, nil
	case *SelectPlan:
		if e.Indexes != nil {
			if scan, ok := n.Child.(*ScanPlan); ok {
				rel, served, err := e.indexedSelectRel(ctx, n, scan)
				if err != nil {
					return nil, err
				}
				if served {
					return rel, nil
				}
			}
		}
		child, err := e.ExecuteContext(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return Select(ctx, child, n.Pred, e.Stats)
	case *ProjectPlan:
		child, err := e.ExecuteContext(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return Project(ctx, child, n.Columns, e.Stats)
	case *ProductPlan:
		left, err := e.ExecuteContext(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.ExecuteContext(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return Product(ctx, left, right, e.Stats)
	case *JoinPlan:
		left, err := e.ExecuteContext(ctx, n.Left)
		if err != nil {
			return nil, err
		}
		if e.Indexes != nil {
			if scan, ok := n.Right.(*ScanPlan); ok {
				if base := e.DB.Relation(scan.Relation); base != nil {
					// The build side is a bare scan: attach the shared index
					// instead of materializing and hashing the scan.
					alias := scan.Alias
					if alias == "" {
						alias = scan.Relation
					}
					return IndexedHashJoin(ctx, left, base.QualifyColumns(alias), n.LeftCol, n.RightCol, e.Stats, e.Indexes)
				}
			}
		}
		right, err := e.ExecuteContext(ctx, n.Right)
		if err != nil {
			return nil, err
		}
		return hashJoin(ctx, left, right, n.LeftCol, n.RightCol, e.Stats, nil, e.Workers)
	case *AggregatePlan:
		child, err := e.ExecuteContext(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return Aggregate(ctx, child, n.Func, n.Column, e.Stats)
	case *DistinctPlan:
		child, err := e.ExecuteContext(ctx, n.Child)
		if err != nil {
			return nil, err
		}
		return Distinct(ctx, child, e.Stats)
	default:
		return nil, fmt.Errorf("execute: unsupported plan node %T", p)
	}
}

// qualifiedScanColumns returns the alias-qualified output columns of a scan,
// exactly as newScanSource and QualifyColumns name them.
func qualifiedScanColumns(base *Relation, alias string) []string {
	cols := make([]string, len(base.Columns))
	for i, c := range base.Columns {
		cols[i] = alias + "." + unqualified(c)
	}
	return cols
}

// constFilterStack unwraps a chain of constant-only selections down to a scan,
// returning the scan and the per-level predicates in bottom-to-top order.
// ok=false for any other shape (a non-constant predicate anywhere in the
// chain, or a non-scan leaf).
func constFilterStack(p Plan) (*ScanPlan, []Predicate, bool) {
	var preds []Predicate // collected top to bottom
	for {
		switch n := p.(type) {
		case *ScanPlan:
			for i, j := 0, len(preds)-1; i < j; i, j = i+1, j-1 {
				preds[i], preds[j] = preds[j], preds[i]
			}
			return n, preds, true
		case *SelectPlan:
			if _, ok := constPreds(n.Pred); !ok {
				return nil, nil, false
			}
			preds = append(preds, n.Pred)
			p = n.Child
		default:
			return nil, nil, false
		}
	}
}

// compileIndexedSelect lowers a stack of constant selections directly above a
// scan into an index probe: the bottom-most constant equality whose column
// resolves becomes the probe, and every other comparison is evaluated as a
// residual per matched row.  ok=false hands the plan back to the plain
// compiler (wrong shape, or no equality to probe with).  Whether the probe is
// actually answerable from the index depends on the column's content and is
// decided when the source starts; if not, it runs the plain pipeline itself.
func (e *Executor) compileIndexedSelect(ctx context.Context, top *SelectPlan) (RowSource, bool, error) {
	scan, stack, ok := constFilterStack(top)
	if !ok {
		return nil, false, nil
	}
	base := e.DB.Relation(scan.Relation)
	if base == nil {
		return nil, false, nil // the plain compiler reports the unknown relation
	}
	alias := scan.Alias
	if alias == "" {
		alias = scan.Relation
	}
	cols := qualifiedScanColumns(base, alias)
	resolve := func(name string) int { return lookupColumn(cols, name) }

	// Pick the probe: the bottom-most constant equality with a resolvable
	// column.  Binding errors for unresolvable columns surface below, in the
	// same bottom-to-top order as the plain compiler's.
	probeLevel, probeAt, probeCol := -1, -1, -1
	for li := range stack {
		consts, _ := constPreds(stack[li])
		for ci, cp := range consts {
			if cp.Op != OpEq {
				continue
			}
			if j := resolve(cp.Column); j >= 0 {
				probeLevel, probeAt, probeCol = li, ci, j
				break
			}
		}
		if probeLevel >= 0 {
			break
		}
	}
	if probeLevel < 0 {
		return nil, false, nil
	}

	levels := make([]selectLevel, len(stack))
	fulls := make([]boundPredicate, len(stack))
	var probeVal Value
	for li, pred := range stack {
		full, err := bindPredicate(pred, resolve, cols)
		if err != nil {
			return nil, false, err
		}
		fulls[li] = full
		residual := pred
		if li == probeLevel {
			consts, _ := constPreds(pred)
			probeVal = consts[probeAt].Value
			residual = residualConsts(consts, probeAt)
		}
		if residual != nil {
			bp, err := bindPredicate(residual, resolve, cols)
			if err != nil {
				return nil, false, err
			}
			levels[li].residual = bp
		}
	}
	return &indexScanSource{
		ctx: ctx, cache: e.Indexes, base: base, alias: alias, cols: cols,
		stats: e.Stats, probeCol: probeCol, probeVal: probeVal,
		levels: levels, fulls: fulls,
	}, true, nil
}

// sharedJoinParts is the bound shape of an index-served equi-join, shared by
// the row and batch compilers.  The levels are freshly constructed per bind —
// they carry per-execution row counts and must never be shared between
// pipelines.
type sharedJoinParts struct {
	base   *Relation
	alias  string
	levels []selectLevel
	li, ri int
	cols   []string
}

// bindSharedJoin recognizes an equi-join whose build (right) side is a bare or
// constant-filtered scan of a base relation and binds everything an
// index-served join needs: the build-side constant filters as per-candidate
// levels, the key column positions, and the joined column layout.  ok=false
// hands the join back to the plain compiler.
func (e *Executor) bindSharedJoin(n *JoinPlan, lcols []string) (*sharedJoinParts, bool, error) {
	scan, stack, ok := constFilterStack(n.Right)
	if !ok {
		return nil, false, nil
	}
	base := e.DB.Relation(scan.Relation)
	if base == nil {
		return nil, false, nil // the plain compiler reports the unknown relation
	}
	alias := scan.Alias
	if alias == "" {
		alias = scan.Relation
	}
	rcols := qualifiedScanColumns(base, alias)
	levels := make([]selectLevel, len(stack))
	for i, pred := range stack {
		bp, err := bindPredicate(pred, func(name string) int { return lookupColumn(rcols, name) }, rcols)
		if err != nil {
			return nil, false, err
		}
		levels[i].residual = bp
	}
	li := lookupColumn(lcols, n.LeftCol)
	if li < 0 {
		return nil, false, fmt.Errorf("join: column %q not found in %v", n.LeftCol, lcols)
	}
	ri := lookupColumn(rcols, n.RightCol)
	if ri < 0 {
		return nil, false, fmt.Errorf("join: column %q not found in %v", n.RightCol, rcols)
	}
	cols := make([]string, 0, len(lcols)+len(rcols))
	cols = append(cols, lcols...)
	cols = append(cols, rcols...)
	return &sharedJoinParts{base: base, alias: alias, levels: levels, li: li, ri: ri, cols: cols}, true, nil
}

// compileSharedJoin lowers an equi-join whose build (right) side is a bare or
// constant-filtered scan of a base relation into a join over the shared
// per-column index: the build table is the instance's index and the build-side
// constant filters run per probed candidate.  ok=false hands the join back to
// the plain compiler.
func (e *Executor) compileSharedJoin(ctx context.Context, n *JoinPlan, left RowSource) (RowSource, bool, error) {
	parts, ok, err := e.bindSharedJoin(n, left.Columns())
	if !ok || err != nil {
		return nil, false, err
	}
	return &sharedJoinSource{
		ctx: ctx, cache: e.Indexes, left: left, li: parts.li, base: parts.base, ri: parts.ri,
		name: left.Name() + "⋈" + parts.alias, cols: parts.cols, stats: e.Stats, levels: parts.levels,
	}, true, nil
}

// compileBatchSharedJoin is compileSharedJoin's batch-pipeline twin.
func (e *Executor) compileBatchSharedJoin(ctx context.Context, n *JoinPlan, left BatchSource) (BatchSource, bool, error) {
	parts, ok, err := e.bindSharedJoin(n, left.Columns())
	if !ok || err != nil {
		return nil, false, err
	}
	return &batchSharedJoin{
		ctx: ctx, cache: e.Indexes, left: left, li: parts.li, base: parts.base, ri: parts.ri,
		name: left.Name() + "⋈" + parts.alias, cols: parts.cols, size: e.batchSize(),
		stats: e.Stats, levels: parts.levels,
	}, true, nil
}

// indexedSelectRel is the materialized-path twin of compileIndexedSelect, used
// by cached (MQO) executors, which materialize per node: a constant selection
// directly above a scan is served from the shared index without materializing
// the scan.  served=false falls back to the plain node-by-node execution.
func (e *Executor) indexedSelectRel(ctx context.Context, n *SelectPlan, scan *ScanPlan) (*Relation, bool, error) {
	base := e.DB.Relation(scan.Relation)
	if base == nil {
		return nil, false, nil // the plain path reports the unknown relation
	}
	alias := scan.Alias
	if alias == "" {
		alias = scan.Relation
	}
	return e.Indexes.trySelect(ctx, base.QualifyColumns(alias), n.Pred, e.Stats)
}
