package engine

import (
	"context"
	"fmt"
)

// This file is the vectorized batch pipeline, the batch-at-a-time counterpart
// of the RowSource pipeline in source.go.  Operators exchange ~1024-row
// batches — a window of row tuples plus a selection vector — instead of one
// tuple per interface call, so the hot per-row work (predicate comparisons,
// key hashing, column gathers) runs in tight loops with no per-row dispatch.
// Output tuples are carved from the same flat value arenas as the tuple
// pipeline, and every operator records the same logical statistics and
// produces rows in the same order, so results are bit-identical to both the
// RowSource pipeline and the naive reference at any batch size.

// DefaultBatchSize is the number of rows per vector batch when the executor
// does not override it.  Large enough to amortize per-batch bookkeeping to
// noise, small enough that a batch's working set stays cache-resident.
const DefaultBatchSize = 1024

// Batch is one unit of vectorized data flow: a window of rows and a selection
// vector of live row indices.  A nil Sel means every row is live.  Batches
// handed out by a BatchSource are valid only until the source's next
// NextBatch call — operators reuse their row and selection buffers — but the
// Tuple headers may be copied out freely: the values they point at live in
// base relations or value arenas and are never overwritten.
type Batch struct {
	Rows []Tuple
	Sel  []int32
}

// NumRows returns the number of live rows in the batch.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return len(b.Rows)
}

// BatchSource is the batch pipeline's pull iterator.  NextBatch returns
// (batch, true, nil) for each non-empty batch, (nil, false, nil) at
// exhaustion, and (nil, false, err) on failure (including cancellation).
// Sources never emit empty batches: a selection that empties mid-pipeline
// advances to the next input batch instead.
type BatchSource interface {
	// Name is the relation name a materialization of this source carries.
	Name() string
	// Columns is the output column layout, fixed for the stream's life.
	Columns() []string
	// NextBatch pulls the next batch of live rows.
	NextBatch() (*Batch, bool, error)
}

// MaterializeBatches drains the source into a Relation, copying the live row
// headers out of each batch before pulling the next.
func MaterializeBatches(src BatchSource) (*Relation, error) {
	out := &Relation{Name: src.Name(), Columns: src.Columns()}
	for {
		b, ok, err := src.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if b.Sel == nil {
			out.Rows = append(out.Rows, b.Rows...)
		} else {
			for _, i := range b.Sel {
				out.Rows = append(out.Rows, b.Rows[i])
			}
		}
	}
}

// batchScan windows a materialized row list into batches — the leaf of every
// batch pipeline, serving both base-relation scans (record=true, one "scan"
// recorded at exhaustion, exactly like scanSource) and already-materialized
// inputs (record=false, like matSource).  Row windows alias the backing
// slice; nothing is copied.
type batchScan struct {
	ctx    context.Context
	name   string
	cols   []string
	rows   []Tuple
	size   int
	stats  *Stats
	record bool

	i    int
	nbat int
	out  Batch
	done bool
}

func (s *batchScan) Name() string      { return s.name }
func (s *batchScan) Columns() []string { return s.cols }

func (s *batchScan) NextBatch() (*Batch, bool, error) {
	if err := canceled(s.ctx); err != nil {
		return nil, false, err
	}
	if s.i >= len(s.rows) {
		if !s.done {
			s.done = true
			if s.record {
				s.stats.record(OpKindScan, 0, len(s.rows))
			}
			s.stats.recordBatches(s.nbat)
		}
		return nil, false, nil
	}
	hi := s.i + s.size
	if hi > len(s.rows) {
		hi = len(s.rows)
	}
	s.out = Batch{Rows: s.rows[s.i:hi]}
	s.i = hi
	s.nbat++
	return &s.out, true, nil
}

// batchFilter fuses a selection: each input batch's selection vector is
// compacted through the vectorized predicate into the filter's own buffer.
// Batches whose selection empties are skipped entirely, so downstream
// operators never see them.
type batchFilter struct {
	ctx   context.Context
	src   BatchSource
	pred  vecPredicate
	stats *Stats

	selbuf   []int32
	in, out  int
	nbat     int
	recorded bool
	outb     Batch
}

func (s *batchFilter) Name() string      { return s.src.Name() }
func (s *batchFilter) Columns() []string { return s.src.Columns() }

func (s *batchFilter) NextBatch() (*Batch, bool, error) {
	for {
		b, ok, err := s.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.recorded {
				s.recorded = true
				s.stats.record(OpKindSelect, s.in, s.out)
				s.stats.recordBatches(s.nbat)
			}
			return nil, false, nil
		}
		if err := canceled(s.ctx); err != nil {
			return nil, false, err
		}
		s.in += b.NumRows()
		sel, err := s.pred.filterSel(b.Rows, b.Sel, s.selbuf[:0])
		if err != nil {
			return nil, false, err
		}
		s.selbuf = sel
		if len(sel) == 0 {
			continue // selection emptied: advance to the next input batch
		}
		s.out += len(sel)
		s.nbat++
		s.outb = Batch{Rows: b.Rows, Sel: sel}
		return &s.outb, true, nil
	}
}

// batchProject gathers the projected columns of each batch into fresh tuples
// carved as one flat arena block per batch, emitting a dense batch (no
// selection vector).
type batchProject struct {
	ctx   context.Context
	src   BatchSource
	name  string
	cols  []string
	idx   []int
	stats *Stats
	arena valueArena

	outRows  []Tuple
	n        int
	nbat     int
	recorded bool
	outb     Batch
}

func (s *batchProject) Name() string      { return s.name }
func (s *batchProject) Columns() []string { return s.cols }

func (s *batchProject) NextBatch() (*Batch, bool, error) {
	b, ok, err := s.src.NextBatch()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		if !s.recorded {
			s.recorded = true
			s.stats.record(OpKindProject, s.n, s.n)
			s.stats.recordBatches(s.nbat)
		}
		return nil, false, nil
	}
	if err := canceled(s.ctx); err != nil {
		return nil, false, err
	}
	m := b.NumRows()
	if cap(s.outRows) < m {
		s.outRows = make([]Tuple, m)
	}
	out := s.outRows[:m]
	k := len(s.idx)
	switch {
	case k == 0:
		for r := range out {
			out[r] = Tuple{}
		}
	case contiguousIdx(s.idx):
		// Contiguous runs (every single-column projection) move no values:
		// each output tuple is a capacity-clamped window of its input row,
		// on the immutable-tuple contract projectRows documents.
		j0, j1 := s.idx[0], s.idx[0]+k
		if b.Sel == nil {
			for r := range b.Rows {
				out[r] = b.Rows[r][j0:j1:j1]
			}
		} else {
			for r, i := range b.Sel {
				out[r] = b.Rows[i][j0:j1:j1]
			}
		}
	default:
		flat := s.arena.tuple(k * m)
		off := 0
		if b.Sel == nil {
			for r := range b.Rows {
				row := b.Rows[r]
				t := Tuple(flat[off : off+k : off+k])
				for c, j := range s.idx {
					t[c] = row[j]
				}
				out[r] = t
				off += k
			}
		} else {
			for r, i := range b.Sel {
				row := b.Rows[i]
				t := Tuple(flat[off : off+k : off+k])
				for c, j := range s.idx {
					t[c] = row[j]
				}
				out[r] = t
				off += k
			}
		}
	}
	s.n += m
	s.nbat++
	s.outb = Batch{Rows: out}
	return &s.outb, true, nil
}

// batchProduct is the Cartesian product: the right input is drained and
// buffered (the product's pipeline-breaking side), then each left batch's
// live rows pair with every right row, filling output batches of up to size
// rows.  The current left batch stays valid across emitted output batches
// because the left child is only pulled again once the batch is consumed.
type batchProduct struct {
	ctx         context.Context
	left, right BatchSource
	name        string
	cols        []string
	size        int
	stats       *Stats
	arena       valueArena

	started bool
	rrows   []Tuple
	lb      *Batch
	li      int // dense position within lb
	ri      int // next right row for the current left row
	leftIn  int
	out     int
	nbat    int
	outRows []Tuple
	outb    Batch
	done    bool
}

func (s *batchProduct) Name() string      { return s.name }
func (s *batchProduct) Columns() []string { return s.cols }

func (s *batchProduct) finish() (*Batch, bool, error) {
	if !s.done {
		s.done = true
		s.stats.record(OpKindProduct, s.leftIn+len(s.rrows), s.out)
		s.stats.recordBatches(s.nbat)
	}
	return nil, false, nil
}

// liveRow returns the dense index i's row of batch b.
func liveRow(b *Batch, i int) Tuple {
	if b.Sel != nil {
		return b.Rows[b.Sel[i]]
	}
	return b.Rows[i]
}

func (s *batchProduct) NextBatch() (*Batch, bool, error) {
	if err := canceled(s.ctx); err != nil {
		return nil, false, err
	}
	if s.done {
		return nil, false, nil
	}
	if !s.started {
		s.started = true
		if err := drainBatches(s.right, &s.rrows); err != nil {
			return nil, false, err
		}
	}
	if cap(s.outRows) < s.size {
		s.outRows = make([]Tuple, 0, s.size)
	}
	out := s.outRows[:0]
	for len(out) < s.size {
		if s.lb == nil {
			b, ok, err := s.left.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if len(out) == 0 {
					return s.finish()
				}
				break
			}
			s.leftIn += b.NumRows()
			if len(s.rrows) == 0 {
				continue // left rows still count as input; nothing to emit
			}
			s.lb, s.li, s.ri = b, 0, 0
		}
		out = append(out, s.arena.concat(liveRow(s.lb, s.li), s.rrows[s.ri]))
		s.ri++
		if s.ri == len(s.rrows) {
			s.ri = 0
			s.li++
			if s.li == s.lb.NumRows() {
				s.lb = nil
			}
		}
	}
	s.out += len(out)
	s.nbat++
	s.outb = Batch{Rows: out}
	return &s.outb, true, nil
}

// drainBatches appends every live row header of the source into *rows.
// sizeHinter is implemented by batch sources that can bound their output row
// count before producing anything.  A scan knows its exact count and filters
// and projections cannot grow their input, so the hint is an upper bound —
// drainBatches turns it into one exact-capacity allocation instead of
// geometric append growth (and the growth's copied-then-discarded garbage).
type sizeHinter interface{ sizeHint() int }

func (s *batchScan) sizeHint() int    { return len(s.rows) }
func (s *batchFilter) sizeHint() int  { return sourceSizeHint(s.src) }
func (s *batchProject) sizeHint() int { return sourceSizeHint(s.src) }

// sourceSizeHint returns src's output row bound, or -1 when unknown.
func sourceSizeHint(src BatchSource) int {
	if h, ok := src.(sizeHinter); ok {
		return h.sizeHint()
	}
	return -1
}

func drainBatches(src BatchSource, rows *[]Tuple) error {
	if *rows == nil {
		if n := sourceSizeHint(src); n > 0 {
			*rows = make([]Tuple, 0, n)
		}
	}
	for {
		b, ok, err := src.NextBatch()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if b.Sel == nil {
			*rows = append(*rows, b.Rows...)
		} else {
			for _, i := range b.Sel {
				*rows = append(*rows, b.Rows[i])
			}
		}
	}
}

// batchJoin is the equi-join: the right input is drained into a hash index —
// built partitioned across the worker pool when the build side is large
// enough — and left batches probe it with their key hashes precomputed in one
// tight loop per batch.  Chains preserve build-row order, so output order is
// identical to the tuple pipeline's.
type batchJoin struct {
	ctx         context.Context
	left, right BatchSource
	li, ri      int
	name        string
	cols        []string
	size        int
	workers     int
	stats       *Stats
	arena       valueArena

	started bool
	build   *hashIndex
	lb      *Batch
	pi      int // dense position of the NEXT probe row within lb
	hashes  []uint64
	cur     Tuple
	curHash uint64
	chain   int32
	leftIn  int
	out     int
	nbat    int
	outRows []Tuple
	outb    Batch
	done    bool
}

func (s *batchJoin) Name() string      { return s.name }
func (s *batchJoin) Columns() []string { return s.cols }

// hashLeftBatch precomputes the probe-key hashes of the batch's live rows —
// the interleaved batch FNV-1a pass feeding the shared bucket chains.
func (s *batchJoin) hashLeftBatch(b *Batch) {
	m := b.NumRows()
	if cap(s.hashes) < m {
		s.hashes = make([]uint64, m)
	}
	h := s.hashes[:m]
	if b.Sel == nil {
		hashColumn(b.Rows, s.li, h)
	} else {
		hashColumnSel(b.Rows, s.li, b.Sel, h)
	}
	s.hashes = h
}

func (s *batchJoin) NextBatch() (*Batch, bool, error) {
	if err := canceled(s.ctx); err != nil {
		return nil, false, err
	}
	if s.done {
		return nil, false, nil
	}
	if !s.started {
		s.started = true
		var rrows []Tuple
		if err := drainBatches(s.right, &rrows); err != nil {
			return nil, false, err
		}
		build, err := buildColumnHashIndexPar(s.ctx, rrows, s.ri, s.workers, s.stats)
		if err != nil {
			return nil, false, err
		}
		s.build = build
	}
	if cap(s.outRows) < s.size {
		s.outRows = make([]Tuple, 0, s.size)
	}
	out := s.outRows[:0]
	build := s.build
	for len(out) < s.size {
		if s.chain != 0 {
			j := s.chain
			s.chain = build.next[j-1]
			if build.hashes[j-1] != s.curHash {
				continue // bucket collision: different hash entirely
			}
			rr := build.rows[j-1]
			if !rr[s.ri].EqualKey(s.cur[s.li]) {
				continue // hash collision, not an actual match
			}
			out = append(out, s.arena.concat(s.cur, rr))
			continue
		}
		if s.lb == nil || s.pi >= s.lb.NumRows() {
			b, ok, err := s.left.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if len(out) == 0 {
					if !s.done {
						s.done = true
						s.stats.record(OpKindJoin, s.leftIn+len(build.rows), s.out)
						s.stats.recordBatches(s.nbat)
					}
					return nil, false, nil
				}
				s.lb = nil
				break
			}
			s.leftIn += b.NumRows()
			s.hashLeftBatch(b)
			s.lb, s.pi = b, 0
		}
		s.cur = liveRow(s.lb, s.pi)
		s.curHash = s.hashes[s.pi]
		s.pi++
		s.chain = build.lookup(s.curHash)
	}
	s.out += len(out)
	s.nbat++
	s.outb = Batch{Rows: out}
	return &s.outb, true, nil
}

// batchSharedJoin is batchJoin with the instance's shared per-column index as
// the build table: the build side is a bare or constant-filtered base scan,
// its filters evaluated per probed candidate (the levels), exactly like
// sharedJoinSource — one shared build instead of one per query.
type batchSharedJoin struct {
	ctx    context.Context
	cache  *IndexCache
	left   BatchSource
	li     int
	base   *Relation
	ri     int
	name   string
	cols   []string
	size   int
	stats  *Stats
	arena  valueArena
	levels []selectLevel

	started bool
	build   *hashIndex
	lb      *Batch
	pi      int
	hashes  []uint64
	cur     Tuple
	curHash uint64
	chain   int32
	leftIn  int
	out     int
	nbat    int
	outRows []Tuple
	outb    Batch
	done    bool
}

func (s *batchSharedJoin) Name() string      { return s.name }
func (s *batchSharedJoin) Columns() []string { return s.cols }

func (s *batchSharedJoin) hashLeftBatch(b *Batch) {
	m := b.NumRows()
	if cap(s.hashes) < m {
		s.hashes = make([]uint64, m)
	}
	h := s.hashes[:m]
	if b.Sel == nil {
		hashColumn(b.Rows, s.li, h)
	} else {
		hashColumnSel(b.Rows, s.li, b.Sel, h)
	}
	s.hashes = h
}

func (s *batchSharedJoin) NextBatch() (*Batch, bool, error) {
	if err := canceled(s.ctx); err != nil {
		return nil, false, err
	}
	if s.done {
		return nil, false, nil
	}
	if !s.started {
		s.started = true
		build, err := s.cache.columnIndex(s.ctx, s.base, s.ri, s.stats)
		if err != nil {
			return nil, false, err
		}
		s.stats.recordIndexLookup()
		s.build = build
	}
	if cap(s.outRows) < s.size {
		s.outRows = make([]Tuple, 0, s.size)
	}
	out := s.outRows[:0]
	build := s.build
	for len(out) < s.size {
		if s.chain != 0 {
			j := s.chain
			s.chain = build.next[j-1]
			if build.hashes[j-1] != s.curHash {
				continue // bucket collision: different hash entirely
			}
			rr := build.rows[j-1]
			if !rr[s.ri].EqualKey(s.cur[s.li]) {
				continue // hash collision: not an actual match
			}
			keep, err := evalLevels(s.levels, rr)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue // filtered out of the build side
			}
			out = append(out, s.arena.concat(s.cur, rr))
			continue
		}
		if s.lb == nil || s.pi >= s.lb.NumRows() {
			b, ok, err := s.left.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if len(out) == 0 {
					if !s.done {
						s.done = true
						recordLevels(s.levels, s.stats)
						// The build side was never read: only probe rows count.
						s.stats.record(OpKindJoin, s.leftIn, s.out)
						s.stats.recordBatches(s.nbat)
					}
					return nil, false, nil
				}
				s.lb = nil
				break
			}
			s.leftIn += b.NumRows()
			s.hashLeftBatch(b)
			s.lb, s.pi = b, 0
		}
		s.cur = liveRow(s.lb, s.pi)
		s.curHash = s.hashes[s.pi]
		s.pi++
		s.chain = build.lookup(s.curHash)
	}
	s.out += len(out)
	s.nbat++
	s.outb = Batch{Rows: out}
	return &s.outb, true, nil
}

// batchDistinct hashes each batch's live tuples in one pass and keeps
// first-seen rows via the shared TupleSet, emitting the survivors as a
// selection over the input batch.  Stored row headers stay valid because
// tuple values live in arenas or base relations.
type batchDistinct struct {
	ctx   context.Context
	src   BatchSource
	seen  *TupleSet
	stats *Stats

	selbuf   []int32
	hashbuf  []uint64
	in, out  int
	nbat     int
	recorded bool
	outb     Batch
}

func (s *batchDistinct) Name() string      { return s.src.Name() }
func (s *batchDistinct) Columns() []string { return s.src.Columns() }

func (s *batchDistinct) NextBatch() (*Batch, bool, error) {
	for {
		b, ok, err := s.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if !s.recorded {
				s.recorded = true
				s.stats.record(OpKindDistinct, s.in, s.out)
				s.stats.recordBatches(s.nbat)
			}
			return nil, false, nil
		}
		if err := canceled(s.ctx); err != nil {
			return nil, false, err
		}
		m := b.NumRows()
		s.in += m
		if cap(s.hashbuf) < m {
			s.hashbuf = make([]uint64, m)
		}
		hashes := s.hashbuf[:m]
		if b.Sel == nil {
			for i := range b.Rows {
				hashes[i] = b.Rows[i].Hash64()
			}
		} else {
			for k, i := range b.Sel {
				hashes[k] = b.Rows[i].Hash64()
			}
		}
		sel := s.selbuf[:0]
		if b.Sel == nil {
			for i := range b.Rows {
				if s.seen.AddHashed(hashes[i], b.Rows[i]) {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for k, i := range b.Sel {
				if s.seen.AddHashed(hashes[k], b.Rows[i]) {
					sel = append(sel, i)
				}
			}
		}
		s.selbuf = sel
		if len(sel) == 0 {
			continue
		}
		s.out += len(sel)
		s.nbat++
		s.outb = Batch{Rows: b.Rows, Sel: sel}
		return &s.outb, true, nil
	}
}

// batchAgg drains its input through the aggregate accumulator's batch fast
// path and emits the single result row.  Accumulation order is input order,
// so float summation is bit-identical to every other execution mode.
type batchAgg struct {
	ctx   context.Context
	src   BatchSource
	acc   aggAccumulator
	stats *Stats

	nbat    int
	emitted bool
	outb    Batch
}

func newBatchAgg(ctx context.Context, src BatchSource, fn AggFunc, column string, stats *Stats) (*batchAgg, error) {
	if err := validAggFunc(fn); err != nil {
		return nil, err
	}
	idx := -1
	if fn != AggCount {
		idx = lookupColumn(src.Columns(), column)
		if idx < 0 {
			return nil, fmt.Errorf("aggregate %s: column %q not found in %v", fn, column, src.Columns())
		}
	}
	return &batchAgg{
		ctx: ctx, src: src, stats: stats,
		acc: aggAccumulator{fn: fn, idx: idx, column: column},
	}, nil
}

func (s *batchAgg) Name() string { return s.src.Name() }

func (s *batchAgg) Columns() []string {
	return []string{aggOutputColumn(s.acc.fn, s.acc.column)}
}

func (s *batchAgg) NextBatch() (*Batch, bool, error) {
	if s.emitted {
		s.stats.recordBatches(s.nbat)
		s.nbat = 0
		return nil, false, nil
	}
	for {
		b, ok, err := s.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		if err := canceled(s.ctx); err != nil {
			return nil, false, err
		}
		if err := s.acc.addSel(s.ctx, b.Rows, b.Sel); err != nil {
			return nil, false, err
		}
	}
	s.emitted = true
	s.nbat++
	s.stats.record(OpKindAggregate, s.acc.n, 1)
	s.outb = Batch{Rows: []Tuple{s.acc.result()}}
	return &s.outb, true, nil
}

// rowsToBatches adapts a RowSource into the batch pipeline — the retained
// incremental-migration path.  Index-served sources (indexScanSource) stay
// row-at-a-time behind this adapter; the wrapped source records its own
// operator statistics.
type rowsToBatches struct {
	src   RowSource
	size  int
	stats *Stats

	buf  []Tuple
	nbat int
	done bool
	outb Batch
}

func (s *rowsToBatches) Name() string      { return s.src.Name() }
func (s *rowsToBatches) Columns() []string { return s.src.Columns() }

func (s *rowsToBatches) NextBatch() (*Batch, bool, error) {
	if s.done {
		return nil, false, nil
	}
	if s.buf == nil {
		s.buf = make([]Tuple, 0, s.size)
	}
	buf := s.buf[:0]
	for len(buf) < s.size {
		row, ok, err := s.src.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			break
		}
		buf = append(buf, row)
	}
	s.buf = buf
	if len(buf) == 0 {
		s.stats.recordBatches(s.nbat)
		return nil, false, nil
	}
	s.nbat++
	if s.done {
		// Exhausted mid-batch: the final recordBatches must still happen.
		s.stats.recordBatches(s.nbat)
		s.nbat = 0
	}
	s.outb = Batch{Rows: buf}
	return &s.outb, true, nil
}

// batchesToRows adapts a BatchSource into a RowSource for consumers that still
// iterate row at a time (tests, external integrations).  Row headers are
// served straight from the current batch, which stays valid until the next
// batch is pulled.
type batchesToRows struct {
	src BatchSource

	b    *Batch
	i    int // dense position within b
	done bool
}

func (s *batchesToRows) Name() string      { return s.src.Name() }
func (s *batchesToRows) Columns() []string { return s.src.Columns() }

func (s *batchesToRows) Next() (Tuple, bool, error) {
	for {
		if s.b != nil && s.i < s.b.NumRows() {
			row := liveRow(s.b, s.i)
			s.i++
			return row, true, nil
		}
		if s.done {
			return nil, false, nil
		}
		b, ok, err := s.src.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.done = true
			s.b = nil
			return nil, false, nil
		}
		s.b, s.i = b, 0
	}
}
