package engine

import (
	"context"
	"errors"
	"sync"
)

// PlanCache memoizes materialized plan results by canonical signature.  It is
// the shared-subexpression store of the MQO substrate and is safe for
// concurrent use: when several executors request the same signature at once,
// exactly one computes it and the others block until the result is ready
// (singleflight), so every distinct subexpression is executed exactly once no
// matter how the queries sharing it are scheduled across workers.
type PlanCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	rel  *Relation
	err  error
}

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{entries: make(map[string]*cacheEntry)}
}

// GetOrCompute returns the cached result for the signature, computing it with
// compute on first request.  A compute error is cached too, so a failing
// subexpression fails every query sharing it without being retried — except
// context cancellation/deadline errors, whose entry is evicted so a later run
// with a live context can recompute the subexpression.
func (c *PlanCache) GetOrCompute(sig string, compute func() (*Relation, error)) (*Relation, error) {
	c.mu.Lock()
	e, ok := c.entries[sig]
	if !ok {
		e = &cacheEntry{}
		c.entries[sig] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.rel, e.err = compute()
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			c.mu.Lock()
			if c.entries[sig] == e {
				delete(c.entries, sig)
			}
			c.mu.Unlock()
		}
	})
	return e.rel, e.err
}

// Len returns the number of cached signatures.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
