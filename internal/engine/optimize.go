package engine

import "strings"

// Optimize applies standard rewrites to a source-query plan so that the
// engine's evaluation of reformulated queries stays tractable at realistic
// data sizes, the way any relational executor would:
//
//   - equality selections over a Cartesian product whose two sides each
//     provide one of the compared columns become hash equi-joins, and
//   - constant selections are pushed below products/joins towards the scan
//     that provides their column.
//
// Optimization never changes the result of a plan, only its evaluation order,
// and it is applied uniformly by every evaluation method so the methods stay
// comparable.
func Optimize(p Plan) Plan {
	if p == nil {
		return nil
	}
	p = optimizeChildren(p)
	switch n := p.(type) {
	case *SelectPlan:
		if cp, ok := n.Pred.(*ColPredicate); ok {
			// First try to sink the whole condition into the single child
			// subtree that provides both columns (e.g. a join condition over
			// one side of an outer Cartesian product), then try converting a
			// product whose sides provide one column each into a hash join.
			if pushed := pushDownCol(n.Child, cp); pushed != nil {
				return pushed
			}
			if cp.Op == OpEq {
				if prod, ok := n.Child.(*ProductPlan); ok {
					if join := tryJoin(prod, cp); join != nil {
						return Optimize(join)
					}
				}
			}
		}
		if cp, ok := n.Pred.(*ConstPredicate); ok {
			if pushed := pushDown(n.Child, cp); pushed != nil {
				return pushed
			}
		}
		return n
	default:
		return p
	}
}

// pushDownCol pushes a column-column selection into the child subtree that
// provides both of its columns.  It returns nil when no single child does.
func pushDownCol(child Plan, cp *ColPredicate) Plan {
	both := func(p Plan) bool { return providesColumn(p, cp.Left) && providesColumn(p, cp.Right) }
	switch n := child.(type) {
	case *ProductPlan:
		if both(n.Left) {
			return &ProductPlan{Left: Optimize(&SelectPlan{Pred: cp, Child: n.Left}), Right: n.Right}
		}
		if both(n.Right) {
			return &ProductPlan{Left: n.Left, Right: Optimize(&SelectPlan{Pred: cp, Child: n.Right})}
		}
	case *JoinPlan:
		if both(n.Left) {
			return &JoinPlan{LeftCol: n.LeftCol, RightCol: n.RightCol,
				Left: Optimize(&SelectPlan{Pred: cp, Child: n.Left}), Right: n.Right}
		}
		if both(n.Right) {
			return &JoinPlan{LeftCol: n.LeftCol, RightCol: n.RightCol,
				Left: n.Left, Right: Optimize(&SelectPlan{Pred: cp, Child: n.Right})}
		}
	case *SelectPlan:
		if pushed := pushDownCol(n.Child, cp); pushed != nil {
			return &SelectPlan{Pred: n.Pred, Child: pushed}
		}
	}
	return nil
}

func optimizeChildren(p Plan) Plan {
	switch n := p.(type) {
	case *SelectPlan:
		return &SelectPlan{Pred: n.Pred, Child: Optimize(n.Child)}
	case *ProjectPlan:
		return &ProjectPlan{Columns: n.Columns, Child: Optimize(n.Child)}
	case *ProductPlan:
		return &ProductPlan{Left: Optimize(n.Left), Right: Optimize(n.Right)}
	case *JoinPlan:
		return &JoinPlan{LeftCol: n.LeftCol, RightCol: n.RightCol, Left: Optimize(n.Left), Right: Optimize(n.Right)}
	case *AggregatePlan:
		return &AggregatePlan{Func: n.Func, Column: n.Column, Child: Optimize(n.Child)}
	case *DistinctPlan:
		return &DistinctPlan{Child: Optimize(n.Child)}
	default:
		return p
	}
}

// tryJoin converts σ[left=right](A × B) into a hash join when A provides one
// column and B the other.
func tryJoin(prod *ProductPlan, cp *ColPredicate) Plan {
	leftHasL := providesColumn(prod.Left, cp.Left)
	rightHasR := providesColumn(prod.Right, cp.Right)
	if leftHasL && rightHasR {
		return &JoinPlan{LeftCol: cp.Left, RightCol: cp.Right, Left: prod.Left, Right: prod.Right}
	}
	leftHasR := providesColumn(prod.Left, cp.Right)
	rightHasL := providesColumn(prod.Right, cp.Left)
	if leftHasR && rightHasL {
		return &JoinPlan{LeftCol: cp.Right, RightCol: cp.Left, Left: prod.Left, Right: prod.Right}
	}
	return nil
}

// pushDown pushes a constant selection below products and joins to the child
// that provides its column.  It returns nil when the predicate cannot be
// pushed (the caller keeps the selection where it is).
func pushDown(child Plan, cp *ConstPredicate) Plan {
	switch n := child.(type) {
	case *ProductPlan:
		if providesColumn(n.Left, cp.Column) {
			return &ProductPlan{Left: Optimize(&SelectPlan{Pred: cp, Child: n.Left}), Right: n.Right}
		}
		if providesColumn(n.Right, cp.Column) {
			return &ProductPlan{Left: n.Left, Right: Optimize(&SelectPlan{Pred: cp, Child: n.Right})}
		}
	case *JoinPlan:
		if providesColumn(n.Left, cp.Column) {
			return &JoinPlan{LeftCol: n.LeftCol, RightCol: n.RightCol,
				Left: Optimize(&SelectPlan{Pred: cp, Child: n.Left}), Right: n.Right}
		}
		if providesColumn(n.Right, cp.Column) {
			return &JoinPlan{LeftCol: n.LeftCol, RightCol: n.RightCol,
				Left: n.Left, Right: Optimize(&SelectPlan{Pred: cp, Child: n.Right})}
		}
	case *SelectPlan:
		// Push past another selection so stacked filters can each reach their
		// own scan.
		if pushed := pushDown(n.Child, cp); pushed != nil {
			return &SelectPlan{Pred: n.Pred, Child: pushed}
		}
		// Keep constant selections adjacent to their scan: slide the constant
		// below a non-constant selection over a scan, so the index-eligible
		// select*(scan) shape survives stacking.  Conjunctive filters commute,
		// so only intermediate row counts change, never the result.
		if _, constLevel := constPreds(n.Pred); !constLevel &&
			providesColumn(n.Child, cp.Column) && selectStackOverScan(n.Child) {
			return &SelectPlan{Pred: n.Pred, Child: &SelectPlan{Pred: cp, Child: n.Child}}
		}
	}
	return nil
}

// selectStackOverScan reports whether the plan is a (possibly empty) chain of
// selections ending at a scan — the shape the index-aware compiler serves from
// a per-column index.
func selectStackOverScan(p Plan) bool {
	for {
		switch n := p.(type) {
		case *ScanPlan:
			return true
		case *SelectPlan:
			p = n.Child
		default:
			return false
		}
	}
}

// providesColumn reports whether the plan's output is known to contain the
// (qualified) column.  Detection is structural: scans provide columns whose
// qualifier matches the scan alias, materialized inputs report their actual
// columns, and composite nodes delegate to their children.
func providesColumn(p Plan, column string) bool {
	switch n := p.(type) {
	case *ScanPlan:
		alias := n.Alias
		if alias == "" {
			alias = n.Relation
		}
		return strings.HasPrefix(column, alias+".")
	case *MaterialPlan:
		return n.Rel != nil && n.Rel.ColumnIndex(column) >= 0
	case *SelectPlan:
		return providesColumn(n.Child, column)
	case *DistinctPlan:
		return providesColumn(n.Child, column)
	case *ProjectPlan:
		for _, c := range n.Columns {
			if c == column {
				return true
			}
		}
		return false
	case *ProductPlan:
		return providesColumn(n.Left, column) || providesColumn(n.Right, column)
	case *JoinPlan:
		return providesColumn(n.Left, column) || providesColumn(n.Right, column)
	case *AggregatePlan:
		return false
	default:
		return false
	}
}
