package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"github.com/probdb/urm/internal/exec"
)

// This file is the engine's shared base-relation index subsystem.  The
// workload shape the paper studies — many reformulated source queries over the
// same instance — means every mapping's query scans the same base relations,
// applies constant-equality selections to the same columns and rebuilds the
// same equi-join hash tables.  The IndexCache makes that per-query cost a
// per-instance cost: one lazily built hash index per (relation, column),
// constructed exactly once no matter how many concurrent workers ask for it,
// and shared by every plan shape that can prove it needs exactly that index.

// hashIndex is the engine's one bucket-chain hash structure: rows bucketed by
// a 64-bit key hash, with buckets stored as chains of 1-based row indices
// threaded through a flat []int32 (0 terminates a chain).  Join build tables,
// the per-column base-relation indexes of the IndexCache and TupleSet's
// seen-set all share it, so the chain layout, its int32 row-count assumption
// (an in-memory build side cannot reach 2^31 rows) and the collision rules
// exist exactly once.
//
// Buckets are a flat power-of-two array indexed by hash&mask rather than a
// map keyed by the exact hash: a probe is one masked load instead of a map
// lookup, which is what makes the vectorized probe loops tight.  Each row's
// full 64-bit hash is kept in hashes so chain walks can reject bucket-sharing
// rows with one integer compare before the EqualKey check; rows whose keys
// hash equally but are not EqualKey must still be skipped by the prober.
//
// Column indexes built by buildColumnHashIndex key each row by
// rows[i][col].Hash64() and preserve row order inside every chain: rows are
// inserted back to front, each prepended to its chain, so traversing a chain
// yields rows in ascending row order.
type hashIndex struct {
	heads  []int32 // bucket heads, len is a power of two (never empty)
	mask   uint64  // len(heads) - 1
	hashes []uint64
	next   []int32
	rows   []Tuple

	// col is the keyed column position for column indexes; -1 when the index
	// keys whole tuples (TupleSet).
	col int
	// kinds and hasNaN describe the keyed column's content.  probeValuesForEq
	// consults them to decide whether a constant-equality predicate is
	// answerable from the index: Compare-equality is wider than the hash's
	// EqualKey classes for mixed-kind columns and NaNs.
	kinds  kindMask
	hasNaN bool
}

// newBuckets returns a zeroed bucket array sized to the smallest power of two
// holding n rows at load factor <= 1 (at least one bucket, so lookups never
// bounds-check against an empty array).
func newBuckets(n int) []int32 {
	size := 1
	for size < n {
		size <<= 1
	}
	return make([]int32, size)
}

// lookup returns the head of the bucket chain for hash h (0 = empty).
func (x *hashIndex) lookup(h uint64) int32 { return x.heads[h&x.mask] }

// add appends t under hash h, prepending it to its bucket chain (the TupleSet
// path; chain order does not matter for set membership).  The bucket array
// doubles when the load factor reaches 1.
func (x *hashIndex) add(h uint64, t Tuple) {
	if len(x.rows) >= len(x.heads) {
		x.grow()
	}
	b := h & x.mask
	x.next = append(x.next, x.heads[b])
	x.rows = append(x.rows, t)
	x.hashes = append(x.hashes, h)
	x.heads[b] = int32(len(x.rows))
}

// grow doubles the bucket array and rethreads every chain from the stored
// hashes, back to front so chains stay in ascending row order.
func (x *hashIndex) grow() {
	heads := newBuckets(2 * len(x.heads))
	mask := uint64(len(heads) - 1)
	for i := len(x.rows) - 1; i >= 0; i-- {
		b := x.hashes[i] & mask
		x.next[i] = heads[b]
		heads[b] = int32(i + 1)
	}
	x.heads, x.mask = heads, mask
}

// buildColumnHashIndex builds a hash index over the rows keyed by the given
// column, recording the column's kind mask as it hashes.  The rows slice is
// shared, not copied.
//
// The build is two passes: a blocked batch-hash pass (the interleaved FNV
// kernel, with the kind/NaN scan riding on each cache-hot block) and a chain
// pass that threads buckets back to front from the stored hashes so chains
// stay in ascending row order — exactly the structure the old single fused
// loop produced.
func buildColumnHashIndex(ctx context.Context, rows []Tuple, col int) (*hashIndex, error) {
	x := &hashIndex{
		heads:  newBuckets(len(rows)),
		hashes: make([]uint64, len(rows)),
		next:   make([]int32, len(rows)),
		rows:   rows,
		col:    col,
	}
	x.mask = uint64(len(x.heads) - 1)
	kinds, hasNaN, err := hashRangeMeta(ctx, rows, col, 0, len(rows), x.hashes)
	if err != nil {
		return nil, err
	}
	x.kinds, x.hasNaN = kinds, hasNaN
	for i := len(rows) - 1; i >= 0; i-- {
		if err := canceledEvery(ctx, len(rows)-1-i); err != nil {
			return nil, err
		}
		b := x.hashes[i] & x.mask
		x.next[i] = x.heads[b]
		x.heads[b] = int32(i + 1)
	}
	return x, nil
}

// hashRangeMeta fills hashes[lo:hi] with the column hashes of rows[lo:hi],
// block by block through the interleaved kernel, checking cancellation
// between blocks, and returns the kind mask and NaN flag for the range.
func hashRangeMeta(ctx context.Context, rows []Tuple, col, lo, hi int, hashes []uint64) (kindMask, bool, error) {
	var kinds kindMask
	hasNaN := false
	for blo := lo; blo < hi; blo += checkInterval {
		if err := canceled(ctx); err != nil {
			return 0, false, err
		}
		bhi := blo + checkInterval
		if bhi > hi {
			bhi = hi
		}
		block := rows[blo:bhi]
		hashColumn(block, col, hashes[blo:bhi])
		for i := range block {
			v := &block[i][col]
			kinds |= 1 << uint(v.Kind)
			if v.Kind == KindFloat && v.Float != v.Float {
				hasNaN = true
			}
		}
	}
	return kinds, hasNaN, nil
}

// parallelBuildMinRows is the build-side size below which a partitioned build
// is not worth the fan-out overhead and the sequential build runs instead.
const parallelBuildMinRows = 32768

// buildColumnHashIndexPar is buildColumnHashIndex with the build side split
// across the worker pool: each worker hashes a contiguous row range and
// threads local bucket chains for it, then the per-partition chains are
// merged bucket by bucket in partition order.  Partitions cover ascending row
// ranges and chains are threaded back to front within each, so the merged
// chains are in ascending row order — the structure is identical to the
// sequential build's, and probes cannot tell them apart.
func buildColumnHashIndexPar(ctx context.Context, rows []Tuple, col, workers int, stats *Stats) (*hashIndex, error) {
	if workers <= 1 || len(rows) < parallelBuildMinRows {
		return buildColumnHashIndex(ctx, rows, col)
	}
	nparts := workers
	x := &hashIndex{
		heads:  newBuckets(len(rows)),
		hashes: make([]uint64, len(rows)),
		next:   make([]int32, len(rows)),
		rows:   rows,
		col:    col,
	}
	x.mask = uint64(len(x.heads) - 1)
	nbuckets := len(x.heads)

	// Phase 1: per-partition hash + local chains.  heads/tails are 1-based row
	// indices into the shared arrays; next is written only at this partition's
	// own row positions, so partitions never race.
	partHeads := make([][]int32, nparts)
	partTails := make([][]int32, nparts)
	partKinds := make([]kindMask, nparts)
	partNaN := make([]bool, nparts)
	chunk := (len(rows) + nparts - 1) / nparts
	ec := exec.NewContext(ctx, workers)
	err := exec.ForEach(ec, nparts, func(ctx context.Context, p int) error {
		lo, hi := p*chunk, (p+1)*chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			return nil
		}
		heads := make([]int32, nbuckets)
		tails := make([]int32, nbuckets)
		kinds, nan, err := hashRangeMeta(ctx, rows, col, lo, hi, x.hashes)
		if err != nil {
			return err
		}
		for i := hi - 1; i >= lo; i-- {
			if err := canceledEvery(ctx, hi-1-i); err != nil {
				return err
			}
			b := x.hashes[i] & x.mask
			x.next[i] = heads[b]
			heads[b] = int32(i + 1)
			if tails[b] == 0 {
				tails[b] = int32(i + 1)
			}
		}
		partHeads[p], partTails[p] = heads, tails
		partKinds[p], partNaN[p] = kinds, nan
		return nil
	})
	if err != nil {
		return nil, err
	}
	for p := 0; p < nparts; p++ {
		x.kinds |= partKinds[p]
		x.hasNaN = x.hasNaN || partNaN[p]
	}

	// Phase 2: splice the per-partition chains.  Workers own disjoint bucket
	// ranges, so the shared heads/next writes never race either.
	bucketsPer := (nbuckets + nparts - 1) / nparts
	err = exec.ForEach(ec, nparts, func(ctx context.Context, p int) error {
		lo, hi := p*bucketsPer, (p+1)*bucketsPer
		if hi > nbuckets {
			hi = nbuckets
		}
		for b := lo; b < hi; b++ {
			if err := canceledEvery(ctx, b-lo); err != nil {
				return err
			}
			var head, tail int32
			for q := 0; q < nparts; q++ {
				if partHeads[q] == nil || partHeads[q][b] == 0 {
					continue
				}
				if head == 0 {
					head = partHeads[q][b]
				} else {
					x.next[tail-1] = partHeads[q][b]
				}
				tail = partTails[q][b]
			}
			x.heads[b] = head
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	stats.recordPartitionedBuild(nparts)
	return x, nil
}

// probeMatches collects the 0-based indices of rows whose keyed column is
// EqualKey to one of the probe values, in ascending row order.  visited counts
// the chain entries examined (including hash and bucket collisions).
func (x *hashIndex) probeMatches(ctx context.Context, probes []Value) (matches []int32, visited int, err error) {
	for _, pv := range probes {
		h := pv.Hash64()
		for j := x.lookup(h); j != 0; j = x.next[j-1] {
			if err := canceledEvery(ctx, visited); err != nil {
				return nil, 0, err
			}
			visited++
			if x.hashes[j-1] != h {
				continue // bucket collision: different hash entirely
			}
			if x.rows[j-1][x.col].EqualKey(pv) {
				matches = append(matches, j-1)
			}
		}
	}
	if len(probes) > 1 {
		sort.Slice(matches, func(i, j int) bool { return matches[i] < matches[j] })
	}
	return matches, visited, nil
}

// kindMask is a bitmask of the Kinds present in an indexed column.
type kindMask uint8

func (m kindMask) has(k Kind) bool { return m&(1<<uint(k)) != 0 }

// maxExactInt bounds the integers that float64 represents exactly (2^53).
// Value.Compare compares integers through float64, so above this bound several
// distinct int64 values Compare-equal each other and a probe set cannot
// enumerate them.
const maxExactInt = int64(1) << 53

// probeValuesForEq returns EqualKey probe values whose classes together
// contain exactly the rows satisfying `column = v` under Compare semantics,
// or ok=false when no such finite probe set exists for a column with the
// given content.
//
// The subtlety is that the selection predicate's OpEq uses Value.Compare,
// which equates values across kinds — I(1), F(1) and S("1") all compare
// equal — while the index hashes by EqualKey, which keeps kinds apart.  The
// probe set bridges the two when the column's kind mask allows it:
//
//   - a NULL constant matches only NULLs;
//   - a string that does not parse as a float matches only that exact string,
//     whatever the column holds (numeric renderings always parse);
//   - a numeric-parsing string is answerable only from a purely
//     string/NULL-valued column (otherwise it also matches numbers that
//     cannot be enumerated: "1", "1.0" and "1e0" all equal I(1));
//   - an int or float constant is answerable when the column holds no strings
//     and no NaNs (a stored NaN Compare-equals every number), probing both
//     the int and the float spelling of the value, plus the other-signed zero
//     (−0 and +0 are distinct EqualKey classes but compare equal);
//   - integers at or beyond 2^53 are rejected outright: Compare goes through
//     float64, where several distinct huge integers are equal.
func probeValuesForEq(v Value, kinds kindMask, hasNaN bool) ([]Value, bool) {
	switch v.Kind {
	case KindNull:
		return []Value{v}, true
	case KindString:
		if _, err := strconv.ParseFloat(v.Str, 64); err != nil {
			return []Value{v}, true
		}
		if kinds.has(KindInt) || kinds.has(KindFloat) {
			return nil, false
		}
		return []Value{v}, true
	case KindInt:
		if kinds.has(KindString) || hasNaN {
			return nil, false
		}
		n := v.Int
		if n <= -maxExactInt || n >= maxExactInt {
			return nil, false
		}
		probes := []Value{v, F(float64(n))}
		if n == 0 {
			probes = append(probes, F(math.Copysign(0, -1)))
		}
		return probes, true
	case KindFloat:
		f := v.Float
		if f != f || kinds.has(KindString) || hasNaN {
			return nil, false
		}
		probes := []Value{v}
		switch {
		case f == 0:
			other := math.Copysign(0, -1)
			if math.Signbit(f) {
				other = 0
			}
			probes = append(probes, F(other), I(0))
		case math.Trunc(f) == f && f > -float64(maxExactInt) && f < float64(maxExactInt):
			probes = append(probes, I(int64(f)))
		case kinds.has(KindInt) && !math.IsInf(f, 0):
			// An integer-valued float at or beyond 2^53: several int64 values
			// round to it, and the probe set cannot enumerate them.  (±Inf is
			// safe — no int64 converts to an infinity.)
			return nil, false
		}
		return probes, true
	default:
		return nil, false
	}
}

// constPreds flattens p into its constant comparisons when p is a single
// ConstPredicate or a conjunction of them; any other shape reports ok=false.
func constPreds(p Predicate) ([]*ConstPredicate, bool) {
	switch n := p.(type) {
	case *ConstPredicate:
		return []*ConstPredicate{n}, true
	case *AndPredicate:
		out := make([]*ConstPredicate, 0, len(n.Children))
		for _, c := range n.Children {
			cp, ok := c.(*ConstPredicate)
			if !ok {
				return nil, false
			}
			out = append(out, cp)
		}
		return out, true
	default:
		return nil, false
	}
}

// residualConsts rebuilds the predicate minus the probe comparison (which the
// index answers exactly).  nil means nothing remains to evaluate per row.
func residualConsts(consts []*ConstPredicate, skip int) Predicate {
	rest := make([]Predicate, 0, len(consts)-1)
	for i, cp := range consts {
		if i != skip {
			rest = append(rest, cp)
		}
	}
	switch len(rest) {
	case 0:
		return nil
	case 1:
		return rest[0]
	default:
		return &AndPredicate{Children: rest}
	}
}

// colKey identifies one cached column index.
type colKey struct {
	rel *Relation
	col int
}

// colEntry is one singleflight-constructed column index together with the
// relation state it was built against.
type colEntry struct {
	version uint64
	nrows   int
	once    sync.Once
	idx     *hashIndex
	err     error
}

// IndexCache memoizes per-(relation, column) hash indexes for the base
// relations of one Instance.  Construction is lazy and singleflight: when
// several concurrent workers request the same index, exactly one builds it and
// the others block until it is ready, so each index is built once per instance
// no matter how the queries sharing it are scheduled.
//
// Entries are validated against the relation's mutation version and row count
// on every request, so appending to a base relation (Relation.Append)
// invalidates its cached indexes; the next request rebuilds them.  Mutating
// Relation.Rows in place during evaluation is outside the engine's contract,
// exactly as it is for a running scan.
type IndexCache struct {
	db      *Instance
	mu      sync.Mutex
	entries map[colKey]*colEntry
}

func newIndexCache(db *Instance) *IndexCache {
	return &IndexCache{db: db, entries: make(map[colKey]*colEntry)}
}

// Len returns the number of cached column indexes.
func (c *IndexCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// columnIndex returns the shared hash index over the relation's column,
// building it on first request.  A build aborted by context cancellation is
// evicted, and waiters whose own context is still live retry — one of them
// becomes the next builder — so one caller's cancellation never fails a
// concurrent query that wasn't cancelled, and a later run can always
// construct the index.
func (c *IndexCache) columnIndex(ctx context.Context, rel *Relation, col int, stats *Stats) (*hashIndex, error) {
	if col < 0 || col >= len(rel.Columns) {
		return nil, fmt.Errorf("index: column %d out of range for %s", col, rel.Name)
	}
	if c.db.Relation(rel.Name) != rel {
		// A relation the cache does not own — an adopted cache (AdoptIndexes)
		// asked to index a derived instance's delta or prefix slice.  Build a
		// transient, uncached index so foreign row slices can never alias a
		// cached entry.
		idx, err := buildColumnHashIndex(ctx, rel.Rows[:len(rel.Rows):len(rel.Rows)], col)
		if err == nil {
			stats.recordIndexBuild()
		}
		return idx, err
	}
	key := colKey{rel: rel, col: col}
	for {
		ver := rel.version.Load()
		nrows := len(rel.Rows)
		c.mu.Lock()
		e := c.entries[key]
		if e != nil && (e.version != ver || e.nrows != nrows) {
			delete(c.entries, key)
			e = nil
		}
		if e == nil {
			e = &colEntry{version: ver, nrows: nrows}
			c.entries[key] = e
		}
		c.mu.Unlock()
		e.once.Do(func() {
			e.idx, e.err = buildColumnHashIndex(ctx, rel.Rows[:e.nrows:e.nrows], col)
			if e.err == nil {
				stats.recordIndexBuild()
			} else if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
			}
		})
		if e.err == nil {
			return e.idx, nil
		}
		if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
			// The winning builder's context died — not necessarily ours.  The
			// entry has been evicted; fail with our own context's error if we
			// were cancelled too, otherwise take another turn.
			if ctxErr := canceled(ctx); ctxErr != nil {
				return nil, ctxErr
			}
			continue
		}
		return nil, e.err
	}
}

// Warm eagerly builds the index for every (relation, column) of the
// instance, in registration order, so that a long-lived service pays index
// construction when a scenario is registered rather than on the first query
// that needs each index.  It returns the number of indexes built by this call
// (already-cached entries are revalidated, not rebuilt).  Builds honour the
// context; a cancelled build is evicted exactly as on the lazy path.
func (c *IndexCache) Warm(ctx context.Context, stats *Stats) (int, error) {
	built := 0
	before := stats.IndexBuilds()
	for _, name := range c.db.RelationNames() {
		rel := c.db.Relation(name)
		for col := range rel.Columns {
			if _, err := c.columnIndex(ctx, rel, col, stats); err != nil {
				return built, err
			}
			built = stats.IndexBuilds() - before
		}
	}
	return built, nil
}

// AppendInPlace extends every already-built index over rel to cover rows
// appended since (oldLen, oldVersion): the new rows are hashed through the
// same blocked kernel as a cold build, kind/NaN metadata is OR-ed in, and each
// row is threaded onto the tail of its bucket chain (or the whole structure is
// rethreaded when the bucket array must grow) so chains stay in ascending row
// order — the resulting index is structurally identical to a cold rebuild over
// all len(rel.Rows) rows.  Entries that were never built, failed, or were
// built against some other relation state are dropped for the lazy path to
// rebuild.  It returns the number of indexes extended.
//
// The caller must hold whatever lock excludes concurrent evaluations — the
// same contract as Relation.Append itself, since probing an index mid-mutation
// is as racy as scanning the rows mid-mutation.
func (c *IndexCache) AppendInPlace(ctx context.Context, rel *Relation, oldLen int, oldVersion uint64) int {
	n := len(rel.Rows)
	if n < oldLen {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	extended := 0
	for col := range rel.Columns {
		key := colKey{rel: rel, col: col}
		e := c.entries[key]
		if e == nil {
			continue
		}
		if e.idx == nil || e.version != oldVersion || e.nrows != oldLen {
			// Unbuilt, failed, or built against a state this append does not
			// extend: leave it to the lazy rebuild path.
			delete(c.entries, key)
			continue
		}
		x := e.idx
		x.hashes = append(x.hashes, make([]uint64, n-oldLen)...)
		x.next = append(x.next, make([]int32, n-oldLen)...)
		kinds, hasNaN, err := hashRangeMeta(ctx, rel.Rows[:n:n], col, oldLen, n, x.hashes)
		if err != nil {
			delete(c.entries, key)
			continue
		}
		x.kinds |= kinds
		x.hasNaN = x.hasNaN || hasNaN
		x.rows = rel.Rows[:n:n] // the append may have reallocated the backing array
		if len(x.heads) < n {
			// Rethread everything into the bucket array a cold build over n
			// rows would allocate; back to front keeps chains in row order.
			heads := newBuckets(n)
			mask := uint64(len(heads) - 1)
			for i := n - 1; i >= 0; i-- {
				b := x.hashes[i] & mask
				x.next[i] = heads[b]
				heads[b] = int32(i + 1)
			}
			x.heads, x.mask = heads, mask
		} else {
			for i := oldLen; i < n; i++ {
				b := x.hashes[i] & x.mask
				if x.heads[b] == 0 {
					x.heads[b] = int32(i + 1)
					continue
				}
				j := x.heads[b]
				for x.next[j-1] != 0 {
					j = x.next[j-1]
				}
				x.next[j-1] = int32(i + 1)
			}
		}
		e.version = rel.version.Load()
		e.nrows = n
		extended++
	}
	return extended
}

// baseForRows reports which base relation's row list backs rows, if any.
// Materialized scans (QualifyColumns) and o-sharing's untouched fragments
// share the base relation's []Tuple, so pointer identity of the first row plus
// equal length identifies an unfiltered base scan; any selection, projection
// or product produces a fresh slice and fails the check.
func (c *IndexCache) baseForRows(rows []Tuple) (*Relation, bool) {
	if len(rows) == 0 {
		return nil, false
	}
	for _, r := range c.db.relations {
		if len(r.Rows) == len(rows) && &r.Rows[0] == &rows[0] {
			return r, true
		}
	}
	return nil, false
}

// trySelect serves a constant selection over an untouched base scan from the
// shared index: rows whose probe column equals the constant come from the
// index in base row order, with the remaining constant comparisons evaluated
// per matched row.  ok=false means the caller must run the plain selection
// (wrong shape, no equality probe, or a column content the probe set cannot
// cover).
func (c *IndexCache) trySelect(ctx context.Context, rel *Relation, pred Predicate, stats *Stats) (*Relation, bool, error) {
	consts, ok := constPreds(pred)
	if !ok {
		return nil, false, nil
	}
	base, ok := c.baseForRows(rel.Rows)
	if !ok {
		return nil, false, nil
	}
	probeAt, col := -1, -1
	for i, cp := range consts {
		if cp.Op != OpEq {
			continue
		}
		if j := rel.ColumnIndex(cp.Column); j >= 0 {
			probeAt, col = i, j
			break
		}
	}
	if probeAt < 0 {
		return nil, false, nil
	}
	idx, err := c.columnIndex(ctx, base, col, stats)
	if err != nil {
		return nil, false, err
	}
	probes, ok := probeValuesForEq(consts[probeAt].Value, idx.kinds, idx.hasNaN)
	if !ok {
		return nil, false, nil
	}
	var residual boundPredicate
	if rp := residualConsts(consts, probeAt); rp != nil {
		residual, err = bindRelPredicate(rp, rel)
		if err != nil {
			return nil, false, err
		}
	}
	matches, _, err := idx.probeMatches(ctx, probes)
	if err != nil {
		return nil, false, err
	}
	out := NewRelation(rel.Name, rel.Columns)
	for _, mi := range matches {
		row := idx.rows[mi]
		if residual != nil {
			keep, err := residual.eval(row)
			if err != nil {
				return nil, false, err
			}
			if !keep {
				continue
			}
		}
		out.Rows = append(out.Rows, row)
	}
	stats.recordIndexLookup()
	stats.record(OpKindSelect, len(matches), len(out.Rows))
	return out, true, nil
}

// IndexedSelect is Select with an optional shared base-relation index: when
// rel is an untouched scan of one of the cache's base relations and the
// predicate is a constant equality the index can answer exactly, the matching
// rows come from the per-column hash index instead of a full scan.  The result
// is bit-identical to Select — same rows, same order.  The o-sharing
// evaluator's fragment selections go through here; a nil cache is the plain
// Select.
func IndexedSelect(ctx context.Context, rel *Relation, pred Predicate, stats *Stats, cache *IndexCache) (*Relation, error) {
	if cache != nil {
		out, ok, err := cache.trySelect(ctx, rel, pred, stats)
		if err != nil {
			return nil, err
		}
		if ok {
			return out, nil
		}
	}
	return Select(ctx, rel, pred, stats)
}

// IndexedHashJoin is HashJoin with an optional shared build table: when the
// build (right) side is an untouched scan of one of the cache's base
// relations, the join probes the instance's shared per-column index instead of
// draining and hashing the build side per query.  Join matching is EqualKey in
// both paths, so the output is bit-identical to HashJoin.  A nil cache is the
// plain HashJoin.
func IndexedHashJoin(ctx context.Context, left, right *Relation, leftCol, rightCol string, stats *Stats, cache *IndexCache) (*Relation, error) {
	return hashJoin(ctx, left, right, leftCol, rightCol, stats, cache, 0)
}
