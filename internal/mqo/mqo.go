// Package mqo is the multiple-query-optimisation substrate used by the e-MQO
// baseline (Section III-B).  Given the distinct source-query plans produced by
// the possible mappings, it searches for a global execution plan that executes
// every common subexpression only once, in the spirit of Zhou et al.
// (SIGMOD 2007), which the paper uses as its MQO implementation.
//
// The paper's experiments show two properties of e-MQO that this substrate
// reproduces: the merged plan executes the minimal number of source operators,
// and constructing the plan is expensive — its cost grows super-linearly with
// the number of distinct source queries, which is why e-MQO scales poorly with
// the mapping-set size (Figure 10(c)).
package mqo

import (
	"context"
	"fmt"
	"sort"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// Plan is the optimised global plan: the original query plans annotated with
// the sharing structure discovered by the optimiser.
type Plan struct {
	// Queries are the input plans in execution order (most-shared first).
	Queries []engine.Plan
	// SharedSignatures are the canonical signatures of subexpressions that
	// appear in more than one input plan.
	SharedSignatures []string
	// TotalOperators is the number of operator executions a naive evaluation
	// of all queries would perform.
	TotalOperators int
	// OptimalOperators is the number of operator executions of the merged
	// plan, counting each shared subexpression once.
	OptimalOperators int
	// PlanningSteps counts the pairwise comparisons performed during plan
	// search; it grows roughly cubically with the number of queries.
	PlanningSteps int
}

// Optimize builds a shared global plan for the given source-query plans.
//
// The search works in two phases.  Phase 1 indexes every subexpression of
// every plan by canonical signature.  Phase 2 performs a greedy bottom-up
// merge: starting from singleton groups (one per query), it repeatedly scores
// every pair of groups by the operator savings obtained from merging them and
// merges the best pair, until one group remains.  Scoring every pair at every
// step is what makes global plan construction expensive (Θ(Q³) pair scorings
// for Q queries), mirroring the behaviour the paper reports for e-MQO.
func Optimize(plans []engine.Plan) (*Plan, error) {
	if len(plans) == 0 {
		return nil, fmt.Errorf("mqo: no plans to optimise")
	}
	res := &Plan{}

	// Phase 1: per-plan subexpression signature sets.
	sigSets := make([]map[string]int, len(plans)) // signature -> operator count of that subtree
	for i, p := range plans {
		if p == nil {
			return nil, fmt.Errorf("mqo: nil plan at index %d", i)
		}
		set := make(map[string]int)
		collectSubexpressions(p, set)
		sigSets[i] = set
		res.TotalOperators += engine.CountOperators(p)
	}

	// Shared signatures across plans.
	count := make(map[string]int)
	opCount := make(map[string]int)
	for _, set := range sigSets {
		for sig, ops := range set {
			count[sig]++
			opCount[sig] = ops
		}
	}
	for sig, c := range count {
		if c > 1 {
			res.SharedSignatures = append(res.SharedSignatures, sig)
		}
	}
	sort.Strings(res.SharedSignatures)

	// Phase 2: greedy group merging.  groups[i] holds the union of signatures
	// of its member queries; merging two groups saves the operators of the
	// signatures they have in common.
	type group struct {
		members []int
		sigs    map[string]int
	}
	groups := make([]*group, len(plans))
	for i := range plans {
		sigs := make(map[string]int, len(sigSets[i]))
		for s, o := range sigSets[i] {
			sigs[s] = o
		}
		groups[i] = &group{members: []int{i}, sigs: sigs}
	}
	overlapSavings := func(a, b *group) int {
		saving := 0
		small, large := a, b
		if len(small.sigs) > len(large.sigs) {
			small, large = large, small
		}
		for s, ops := range small.sigs {
			if _, ok := large.sigs[s]; ok {
				saving += ops
			}
		}
		return saving
	}
	for len(groups) > 1 {
		bestI, bestJ, bestSaving := 0, 1, -1
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				res.PlanningSteps++
				s := overlapSavings(groups[i], groups[j])
				if s > bestSaving {
					bestI, bestJ, bestSaving = i, j, s
				}
			}
		}
		// Merge bestJ into bestI.
		gi, gj := groups[bestI], groups[bestJ]
		gi.members = append(gi.members, gj.members...)
		for s, o := range gj.sigs {
			gi.sigs[s] = o
		}
		groups = append(groups[:bestJ], groups[bestJ+1:]...)
	}

	// Execution order: the merge order determined above (members of the final
	// group, most-shared queries first by construction of the greedy merge).
	finalOrder := groups[0].members
	res.Queries = make([]engine.Plan, 0, len(plans))
	for _, idx := range finalOrder {
		res.Queries = append(res.Queries, plans[idx])
	}

	// Optimal operator count: every distinct subexpression signature across
	// all plans executes exactly once.
	distinct := make(map[string]bool)
	for _, set := range sigSets {
		for sig := range set {
			distinct[sig] = true
		}
	}
	// Count one operator per distinct non-leaf signature.
	for sig := range distinct {
		if isOperatorSignature(sig) {
			res.OptimalOperators++
		}
	}
	return res, nil
}

// Execute runs the optimised plan against the instance using a shared-result
// cache so that each common subexpression is computed once.  It returns one
// result relation per query, in the same order as plan.Queries.
func (p *Plan) Execute(db *engine.Instance, stats *engine.Stats) ([]*engine.Relation, error) {
	return p.ExecuteParallel(exec.Sequential(), db, stats)
}

// ExecuteParallel runs the optimised plan's queries on the runtime's worker
// pool.  The queries share one concurrency-safe plan cache, so every common
// subexpression is still executed exactly once — the first query to request a
// shared signature computes it and the others reuse the materialized result.
// Per-query statistics are merged into stats in query order, keeping the
// reported operator counts identical to a sequential run.
func (p *Plan) ExecuteParallel(ec *exec.Context, db *engine.Instance, stats *engine.Stats) ([]*engine.Relation, error) {
	cache := engine.NewPlanCache()
	out := make([]*engine.Relation, len(p.Queries))
	type queryRun struct {
		rel   *engine.Relation
		stats *engine.Stats
	}
	err := exec.Map(ec, len(p.Queries), func(ctx context.Context, i int) (queryRun, error) {
		ex := &engine.Executor{DB: db, Stats: engine.NewStats(), Cache: cache, Indexes: db.Indexes(), Batch: ec.Batch(), Workers: ec.Parallelism()}
		rel, err := ex.ExecuteContext(ctx, p.Queries[i])
		return queryRun{rel: rel, stats: ex.Stats}, err
	}, func(i int, r queryRun) error {
		out[i] = r.rel
		stats.Add(r.stats)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("mqo execute: %w", err)
	}
	return out, nil
}

// collectSubexpressions records the signature of every subtree of the plan,
// mapping it to the number of operator nodes in that subtree.
func collectSubexpressions(p engine.Plan, out map[string]int) {
	if p == nil {
		return
	}
	out[p.Signature()] = engine.CountOperators(p)
	for _, c := range p.Children() {
		collectSubexpressions(c, out)
	}
}

// isOperatorSignature reports whether the signature denotes an operator node
// rather than a leaf scan or materialized input.
func isOperatorSignature(sig string) bool {
	return len(sig) > 0 && !hasPrefix(sig, "scan(") && !hasPrefix(sig, "mat(")
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
