package mqo

import (
	"testing"

	"github.com/probdb/urm/internal/engine"
)

func testDB() *engine.Instance {
	db := engine.NewInstance("D")
	r := engine.NewRelation("R", []string{"a", "b"})
	r.MustAppend(engine.Tuple{engine.S("x"), engine.I(1)})
	r.MustAppend(engine.Tuple{engine.S("y"), engine.I(2)})
	r.MustAppend(engine.Tuple{engine.S("x"), engine.I(3)})
	db.AddRelation(r)
	return db
}

func selPlan(col, val string, projCol string) engine.Plan {
	return &engine.ProjectPlan{
		Columns: []string{projCol},
		Child: &engine.SelectPlan{
			Pred:  engine.Eq(col, engine.S(val)),
			Child: &engine.ScanPlan{Relation: "R", Alias: "R.R"},
		},
	}
}

func TestOptimizeFindsSharedSubexpressions(t *testing.T) {
	p1 := selPlan("R.R.a", "x", "R.R.a")
	p2 := selPlan("R.R.a", "x", "R.R.b") // shares the select+scan subtree
	p3 := selPlan("R.R.a", "y", "R.R.a") // different selection
	plan, err := Optimize([]engine.Plan{p1, p2, p3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(plan.Queries))
	}
	if len(plan.SharedSignatures) == 0 {
		t.Error("expected shared subexpressions between p1 and p2")
	}
	if plan.TotalOperators != 6 {
		t.Errorf("naive operators = %d, want 6", plan.TotalOperators)
	}
	// Optimal: 3 projects + 2 distinct selects = 5.
	if plan.OptimalOperators != 5 {
		t.Errorf("optimal operators = %d, want 5", plan.OptimalOperators)
	}
	if plan.PlanningSteps == 0 {
		t.Error("plan search should record pairwise comparisons")
	}
}

func TestExecuteSharesWork(t *testing.T) {
	db := testDB()
	p1 := selPlan("R.R.a", "x", "R.R.a")
	p2 := selPlan("R.R.a", "x", "R.R.b")
	plan, err := Optimize([]engine.Plan{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	stats := engine.NewStats()
	rels, err := plan.Execute(db, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("results = %d, want 2", len(rels))
	}
	for _, rel := range rels {
		if rel.NumRows() != 2 {
			t.Errorf("expected 2 matching rows, got %d", rel.NumRows())
		}
	}
	// The shared select executes once thanks to the cache.
	if stats.Count(engine.OpKindSelect) != 1 {
		t.Errorf("select executed %d times, want 1", stats.Count(engine.OpKindSelect))
	}
	if stats.Count(engine.OpKindProject) != 2 {
		t.Errorf("project executed %d times, want 2", stats.Count(engine.OpKindProject))
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Optimize([]engine.Plan{nil}); err == nil {
		t.Error("nil plan should error")
	}
}

func TestPlanningCostGrowsSuperLinearly(t *testing.T) {
	build := func(n int) []engine.Plan {
		plans := make([]engine.Plan, n)
		for i := range plans {
			plans[i] = selPlan("R.R.a", string(rune('a'+i%26))+"v", "R.R.a")
		}
		return plans
	}
	small, err := Optimize(build(10))
	if err != nil {
		t.Fatal(err)
	}
	large, err := Optimize(build(40))
	if err != nil {
		t.Fatal(err)
	}
	// 4x the queries should cost much more than 4x the planning steps
	// (roughly cubic growth).
	if large.PlanningSteps < 16*small.PlanningSteps {
		t.Errorf("planning cost grew too slowly: %d -> %d", small.PlanningSteps, large.PlanningSteps)
	}
	if large.PlanningSteps <= small.PlanningSteps {
		t.Error("planning cost should grow with the number of queries")
	}
	_ = engine.CountOperators(small.Queries[0])
}
