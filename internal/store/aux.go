package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path"
)

// Auxiliary state: small named blobs — the coordinator's lease table is the
// first — persisted beside the scenario WALs with the same guarantees the
// snapshot files give: a magic header, one checksummed frame, and an atomic
// tmp → fsync → rename → SyncDir replacement, so a crash leaves either the
// previous blob or the new one, never a torn mix.  Aux blobs live under
// <dir>/aux/<name>.aux and are versioned by the store's FormatVersion like
// everything else in the directory.

const auxMagic = "URMAUX1\n"

// auxDir is where aux blobs live.
func (st *Store) auxDir() string { return path.Join(st.dir, "aux") }

func (st *Store) auxPath(name string) string { return path.Join(st.auxDir(), name+".aux") }

// validAuxName rejects names that would escape the aux directory or collide
// with the tmp suffix.
func validAuxName(name string) error {
	if name == "" {
		return fmt.Errorf("store: empty aux name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("store: aux name %q: only [a-z0-9_-] allowed", name)
		}
	}
	return nil
}

// SaveAux atomically replaces the named aux blob.  The write is always
// fsynced (aux blobs are rare and small, like registrations), and the
// directory entry is synced so the rename itself survives a crash.
func (st *Store) SaveAux(name string, payload []byte) error {
	if err := validAuxName(name); err != nil {
		return err
	}
	if err := st.fs.MkdirAll(st.auxDir()); err != nil {
		return fmt.Errorf("store: aux %s: %w", name, err)
	}
	tmp := st.auxPath(name) + ".tmp"
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: aux %s: %w", name, err)
	}
	_, werr := f.Write(append([]byte(auxMagic), frame(payload)...))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: aux %s: %w", name, werr)
	}
	if err := st.fs.Rename(tmp, st.auxPath(name)); err != nil {
		return fmt.Errorf("store: aux %s: %w", name, err)
	}
	if err := st.fs.SyncDir(st.auxDir()); err != nil {
		return fmt.Errorf("store: aux %s: %w", name, err)
	}
	return nil
}

// ErrAuxNotFound marks a LoadAux of a blob that was never saved.
var ErrAuxNotFound = errors.New("store: aux state not found")

// LoadAux reads the named aux blob.  A missing blob returns ErrAuxNotFound;
// a blob failing its magic or checksum returns ErrCorrupt — unlike a WAL
// tail, an aux blob is written atomically, so any damage is real corruption
// rather than a crash artifact.
func (st *Store) LoadAux(name string) ([]byte, error) {
	if err := validAuxName(name); err != nil {
		return nil, err
	}
	data, err := st.fs.ReadFile(st.auxPath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrAuxNotFound, name)
	}
	if err != nil {
		return nil, fmt.Errorf("store: aux %s: %w", name, err)
	}
	if len(data) < len(auxMagic) || string(data[:len(auxMagic)]) != auxMagic {
		return nil, fmt.Errorf("%w: aux %s has no magic header", ErrCorrupt, name)
	}
	scan := &walScan{data: data[len(auxMagic):]}
	payload, status := scan.next()
	switch status {
	case scanRecord:
	case scanEnd:
		return nil, fmt.Errorf("%w: aux %s is empty", ErrCorrupt, name)
	case scanTorn:
		return nil, fmt.Errorf("%w: aux %s ends mid-record", ErrCorrupt, name)
	default:
		return nil, fmt.Errorf("aux %s: %w", name, scan.err)
	}
	if _, status := scan.next(); status != scanEnd {
		return nil, fmt.Errorf("%w: aux %s carries trailing data", ErrCorrupt, name)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}
