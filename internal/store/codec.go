package store

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/schema"
)

// The codec is a hand-rolled little-endian binary format rather than JSON for
// one load-bearing reason: answers must be bit-identical across a restart,
// and the engine's value semantics distinguish float bit patterns (NaN
// payloads, signed zero) that a decimal round-trip would collapse.  Floats are
// stored as their IEEE-754 bits, ints as two's complement, strings as
// length-prefixed UTF-8.  Every decoder is total: malformed input yields
// ErrCorrupt, never a panic, because recovery feeds it bytes that survived a
// crash.

// ScenarioState is the full durable state of one scenario: everything needed
// to rebuild a server.Scenario answering bit-identically.
type ScenarioState struct {
	Name       string
	Label      string
	Epoch      uint64
	StaleFloor uint64
	Target     *schema.Schema
	Mappings   schema.MappingSet
	Relations  []RelationState
}

// RelationState is one base relation of the source instance.
type RelationState struct {
	Name    string
	Columns []string
	Rows    []engine.Tuple
}

type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string)  { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

func (e *enc) value(v engine.Value) {
	e.u8(byte(v.Kind))
	switch v.Kind {
	case engine.KindString:
		e.str(v.Str)
	case engine.KindInt:
		e.u64(uint64(v.Int))
	case engine.KindFloat:
		e.f64(v.Float)
	}
}

func (e *enc) tuple(t engine.Tuple) {
	e.u32(uint32(len(t)))
	for _, v := range t {
		e.value(v)
	}
}

func (e *enc) attr(a schema.Attribute) {
	e.str(a.Relation)
	e.str(a.Name)
}

// dec is a sticky-error decoder: the first malformed read poisons it and
// every later read returns zero values, so call sites stay linear and the
// single err check at the end covers the whole decode.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail("need %d bytes, have %d", n, len(d.b)-d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	return string(d.take(n))
}

// count reads a u32 element count and sanity-bounds it against the bytes
// remaining, so a corrupt length cannot drive a giant allocation.
func (d *dec) count(minElemBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*minElemBytes > len(d.b)-d.off {
		d.fail("element count %d exceeds remaining input", n)
		return 0
	}
	return n
}

func (d *dec) value() engine.Value {
	kind := engine.Kind(d.u8())
	switch kind {
	case engine.KindNull:
		return engine.Value{}
	case engine.KindString:
		return engine.S(d.str())
	case engine.KindInt:
		return engine.I(int64(d.u64()))
	case engine.KindFloat:
		return engine.F(d.f64())
	default:
		d.fail("unknown value kind %d", kind)
		return engine.Value{}
	}
}

func (d *dec) tuple() engine.Tuple {
	n := d.count(1)
	t := make(engine.Tuple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		t = append(t, d.value())
	}
	return t
}

func (d *dec) attr() schema.Attribute {
	rel := d.str()
	name := d.str()
	return schema.Attribute{Relation: rel, Name: name}
}

// encodeState serializes the full scenario state, prefixed with the record
// type byte (recRegister or recSnapshot — the payload shape is identical).
func encodeState(recType byte, st *ScenarioState) []byte {
	e := &enc{}
	e.u8(recType)
	e.str(st.Name)
	e.str(st.Label)
	e.u64(st.Epoch)
	e.u64(st.StaleFloor)

	e.str(st.Target.Name)
	e.u32(uint32(len(st.Target.Relations)))
	for _, rel := range st.Target.Relations {
		e.str(rel.Name)
		e.u32(uint32(len(rel.Columns)))
		for _, c := range rel.Columns {
			e.str(c.Name)
			e.u8(byte(c.Type))
		}
	}

	e.u32(uint32(len(st.Mappings)))
	for _, m := range st.Mappings {
		e.str(m.ID)
		e.f64(m.Prob)
		e.u32(uint32(len(m.Correspondences)))
		for _, c := range m.Correspondences {
			e.attr(c.Source)
			e.attr(c.Target)
			e.f64(c.Score)
		}
	}

	e.u32(uint32(len(st.Relations)))
	for _, rel := range st.Relations {
		e.str(rel.Name)
		e.u32(uint32(len(rel.Columns)))
		for _, c := range rel.Columns {
			e.str(c)
		}
		e.u32(uint32(len(rel.Rows)))
		for _, row := range rel.Rows {
			e.tuple(row)
		}
	}
	return e.b
}

// decodeState parses a state payload (after the record type byte has been
// consumed).  It rebuilds schema and mapping objects through their validating
// constructors, so structurally impossible states decode as ErrCorrupt.
func decodeState(d *dec) (*ScenarioState, error) {
	st := &ScenarioState{}
	st.Name = d.str()
	st.Label = d.str()
	st.Epoch = d.u64()
	st.StaleFloor = d.u64()

	st.Target = schema.NewSchema(d.str())
	nrels := d.count(5)
	for i := 0; i < nrels && d.err == nil; i++ {
		rel := &schema.RelationSchema{Name: d.str()}
		ncols := d.count(5)
		for j := 0; j < ncols && d.err == nil; j++ {
			rel.Columns = append(rel.Columns, schema.Column{Name: d.str(), Type: schema.Type(d.u8())})
		}
		if d.err == nil {
			if err := st.Target.AddRelation(rel); err != nil {
				d.fail("target schema: %v", err)
			}
		}
	}

	nmaps := d.count(12)
	for i := 0; i < nmaps && d.err == nil; i++ {
		id := d.str()
		prob := d.f64()
		ncorrs := d.count(24)
		var corrs []schema.Correspondence
		for j := 0; j < ncorrs && d.err == nil; j++ {
			corrs = append(corrs, schema.Correspondence{Source: d.attr(), Target: d.attr(), Score: d.f64()})
		}
		if d.err == nil {
			m, err := schema.NewMapping(id, corrs, prob)
			if err != nil {
				d.fail("mapping: %v", err)
				break
			}
			st.Mappings = append(st.Mappings, m)
		}
	}

	nrel := d.count(8)
	for i := 0; i < nrel && d.err == nil; i++ {
		rel := RelationState{Name: d.str()}
		ncols := d.count(4)
		for j := 0; j < ncols && d.err == nil; j++ {
			rel.Columns = append(rel.Columns, d.str())
		}
		nrows := d.count(4)
		for j := 0; j < nrows && d.err == nil; j++ {
			row := d.tuple()
			if d.err == nil && len(row) != len(rel.Columns) {
				d.fail("relation %s: row arity %d, want %d", rel.Name, len(row), len(rel.Columns))
			}
			rel.Rows = append(rel.Rows, row)
		}
		st.Relations = append(st.Relations, rel)
	}
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// encodeAppendRow serializes an AppendRow record: the epoch the mutation
// committed at, the relation, and the row.
func encodeAppendRow(epoch uint64, relation string, row engine.Tuple) []byte {
	e := &enc{}
	e.u8(recAppendRow)
	e.u64(epoch)
	e.str(relation)
	e.tuple(row)
	return e.b
}

// encodeAppendRows serializes an AppendRows record: one batch of rows for one
// relation that committed as a single epoch step.  One record means one frame
// and one fsync for the whole batch.
func encodeAppendRows(epoch uint64, relation string, rows []engine.Tuple) []byte {
	e := &enc{}
	e.u8(recAppendRows)
	e.u64(epoch)
	e.str(relation)
	e.u32(uint32(len(rows)))
	for _, row := range rows {
		e.tuple(row)
	}
	return e.b
}

// encodeBump serializes a Bump record: the new epoch and stale floor.
func encodeBump(epoch, staleFloor uint64) []byte {
	e := &enc{}
	e.u8(recBump)
	e.u64(epoch)
	e.u64(staleFloor)
	return e.b
}
