package store

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"
)

// ErrCrashed is returned by every MemFS operation after the simulated power
// loss point.  The store under test sees it as an ordinary I/O error; the
// test then recovers from Clone(), the durable image.
var ErrCrashed = fmt.Errorf("store: simulated power loss")

// MemFS is an in-memory FS with deterministic fault injection, the disk
// counterpart of internal/qos.Faults.  It models an ordered, write-through
// disk: every byte accepted by Write is durable, and a crash can land after
// any accepted byte.
//
// Faults are budgeted in units: each written byte costs one unit, each
// metadata operation (create, rename, remove, truncate, new directory) costs
// one unit and is atomic — it either happens entirely before the crash or not
// at all.  CrashAfter(n) cuts power once n units are consumed: the operation
// in flight is applied up to the boundary (a Write keeps its prefix), every
// later operation fails with ErrCrashed, and Clone() returns the durable
// image a restart would see.  Sweeping n across [0, Used()] of a reference
// run visits every possible crash point of a mutation sequence.
type MemFS struct {
	mu      sync.Mutex
	files   map[string][]byte
	dirs    map[string]bool
	budget  int64 // remaining units before the crash; -1 = no crash scheduled
	used    int64
	crashed bool

	// SyncErr, when set, is consulted by File.Sync: a non-nil return is
	// surfaced as the fsync failure.  Data already written stays durable
	// (write-through model); the hook tests the store's error handling, not
	// data loss.
	SyncErr func(path string) error
	// ReadHook, when set, may replace the content served by ReadFile —
	// returning a prefix simulates a short read.
	ReadHook func(path string, data []byte) []byte
}

// NewMemFS returns an empty in-memory filesystem with no crash scheduled.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string][]byte), dirs: make(map[string]bool), budget: -1}
}

// CrashAfter schedules a power cut once n more units are consumed.
func (m *MemFS) CrashAfter(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = n
}

// Used returns the total units consumed so far; a fault-free reference run's
// Used() bounds the crash points worth testing.
func (m *MemFS) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Crashed reports whether the scheduled power cut has happened.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// Clone returns the durable image: a fault-free copy of the current file
// state, as a restart after the crash would find it.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for p, b := range m.files {
		out.files[p] = append([]byte(nil), b...)
	}
	for d := range m.dirs {
		out.dirs[d] = true
	}
	return out
}

// Corrupt XORs the byte at off in the named file; test helper for simulating
// bit rot.
func (m *MemFS) Corrupt(path string, off int, xor byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return fmt.Errorf("corrupt %s: %w", path, fs.ErrNotExist)
	}
	if off < 0 || off >= len(b) {
		return fmt.Errorf("corrupt %s: offset %d out of range [0,%d)", path, off, len(b))
	}
	b[off] ^= xor
	return nil
}

// FileSize returns the size of the named file, or -1 if absent.
func (m *MemFS) FileSize(path string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		return -1
	}
	return len(b)
}

// charge consumes n units, returning false (and cutting power) when the
// budget runs out.  It reports how many of the n units fit before the cut.
func (m *MemFS) charge(n int64) (fit int64, ok bool) {
	if m.crashed {
		return 0, false
	}
	m.used += n
	if m.budget < 0 {
		return n, true
	}
	if m.budget >= n {
		m.budget -= n
		return n, true
	}
	fit = m.budget
	m.used += fit - n // only the fitting units count as consumed
	m.budget = 0
	m.crashed = true
	return fit, false
}

// chargeOp consumes one unit for an atomic metadata operation.
func (m *MemFS) chargeOp() bool {
	_, ok := m.charge(1)
	return ok
}

func (m *MemFS) MkdirAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if m.dirs[path] {
		return nil
	}
	if !m.chargeOp() {
		return ErrCrashed
	}
	for p := path; p != "" && p != "." && p != "/"; p = parentDir(p) {
		m.dirs[p] = true
	}
	return nil
}

func (m *MemFS) ReadDir(path string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.dirs[path] {
		return nil, fmt.Errorf("readdir %s: %w", path, fs.ErrNotExist)
	}
	prefix := path + "/"
	var names []string
	for d := range m.dirs {
		if rest, ok := strings.CutPrefix(d, prefix); ok && rest != "" && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	b, ok := m.files[path]
	if !ok {
		return nil, fmt.Errorf("read %s: %w", path, fs.ErrNotExist)
	}
	out := append([]byte(nil), b...)
	if m.ReadHook != nil {
		out = m.ReadHook(path, out)
	}
	return out, nil
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if !m.chargeOp() {
		return nil, ErrCrashed
	}
	m.files[path] = []byte{}
	return &memFile{fs: m, path: path}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	if _, ok := m.files[path]; !ok {
		if !m.chargeOp() {
			return nil, ErrCrashed
		}
		m.files[path] = []byte{}
	}
	return &memFile{fs: m, path: path}, nil
}

func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	b, ok := m.files[oldPath]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldPath, fs.ErrNotExist)
	}
	if !m.chargeOp() {
		return ErrCrashed
	}
	m.files[newPath] = b
	delete(m.files, oldPath)
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if _, ok := m.files[path]; !ok {
		return nil
	}
	if !m.chargeOp() {
		return ErrCrashed
	}
	delete(m.files, path)
	return nil
}

func (m *MemFS) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	if !m.chargeOp() {
		return ErrCrashed
	}
	prefix := path + "/"
	for p := range m.files {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(m.files, p)
		}
	}
	for d := range m.dirs {
		if d == path || strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	return nil
}

func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	b, ok := m.files[path]
	if !ok {
		return fmt.Errorf("truncate %s: %w", path, fs.ErrNotExist)
	}
	if size < 0 || size > int64(len(b)) {
		return fmt.Errorf("truncate %s: size %d out of range [0,%d]", path, size, len(b))
	}
	if !m.chargeOp() {
		return ErrCrashed
	}
	m.files[path] = b[:size]
	return nil
}

func (m *MemFS) SyncDir(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return ErrCrashed
	}
	return nil
}

func parentDir(p string) string {
	i := strings.LastIndexByte(p, '/')
	if i <= 0 {
		return ""
	}
	return p[:i]
}

type memFile struct {
	fs     *MemFS
	path   string
	closed bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, fmt.Errorf("write %s: file closed", f.path)
	}
	if f.fs.crashed {
		return 0, ErrCrashed
	}
	b, ok := f.fs.files[f.path]
	if !ok {
		return 0, fmt.Errorf("write %s: %w", f.path, fs.ErrNotExist)
	}
	fit, ok := f.fs.charge(int64(len(p)))
	f.fs.files[f.path] = append(b, p[:fit]...)
	if !ok {
		return int(fit), ErrCrashed
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	hook := f.fs.SyncErr
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	if hook != nil {
		return hook(f.path)
	}
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}
