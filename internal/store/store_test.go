package store

import (
	"errors"
	"fmt"
	"math"
	"path"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// The test scenario mirrors internal/server's fixture — source S(x, y, z),
// target T(a, b), two mappings disagreeing on b — plus a relation W(f) of
// floats that no query touches, there purely to prove the codec preserves
// bit patterns (NaN, signed zero) across a recovery.

func testState(nrows int) *ScenarioState {
	target := schema.NewSchema("Target")
	target.MustAddRelation(&schema.RelationSchema{Name: "T", Columns: []schema.Column{
		{Name: "a"}, {Name: "b", Type: schema.TypeInt},
	}})
	sAttr := func(name string) schema.Attribute { return schema.Attribute{Relation: "S", Name: name} }
	tAttr := func(name string) schema.Attribute { return schema.Attribute{Relation: "T", Name: name} }
	maps := schema.MappingSet{
		schema.MustNewMapping("m1", []schema.Correspondence{
			{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
			{Source: sAttr("y"), Target: tAttr("b"), Score: 0.8},
		}, 0.6),
		schema.MustNewMapping("m2", []schema.Correspondence{
			{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
			{Source: sAttr("z"), Target: tAttr("b"), Score: 0.7},
		}, 0.4),
	}
	s := RelationState{Name: "S", Columns: []string{"x", "y", "z"}}
	for i := 0; i < nrows; i++ {
		s.Rows = append(s.Rows, engine.Tuple{
			engine.S(fmt.Sprintf("k%02d", i%5)),
			engine.I(int64(i % 7)),
			engine.I(int64(i % 3)),
		})
	}
	w := RelationState{Name: "W", Columns: []string{"f"}, Rows: []engine.Tuple{
		{engine.F(math.NaN())},
		{engine.F(math.Copysign(0, -1))},
		{engine.F(1.5)},
	}}
	return &ScenarioState{
		Name:      "test",
		Label:     "Test",
		Target:    target,
		Mappings:  maps,
		Relations: []RelationState{s, w},
	}
}

func sRow(x string, y, z int64) engine.Tuple {
	return engine.Tuple{engine.S(x), engine.I(y), engine.I(z)}
}

// cloneState deep-copies a scenario state so mutations of one copy cannot
// leak into another (tuples are shared; they are immutable by contract).
func cloneState(st *ScenarioState) *ScenarioState {
	out := &ScenarioState{
		Name:       st.Name,
		Label:      st.Label,
		Epoch:      st.Epoch,
		StaleFloor: st.StaleFloor,
		Target:     st.Target.Clone(),
		Mappings:   st.Mappings.Clone(),
	}
	for _, rel := range st.Relations {
		out.Relations = append(out.Relations, RelationState{
			Name:    rel.Name,
			Columns: append([]string(nil), rel.Columns...),
			Rows:    append([]engine.Tuple(nil), rel.Rows...),
		})
	}
	return out
}

func valueBitsEqual(a, b engine.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case engine.KindString:
		return a.Str == b.Str
	case engine.KindInt:
		return a.Int == b.Int
	case engine.KindFloat:
		return math.Float64bits(a.Float) == math.Float64bits(b.Float)
	default:
		return true
	}
}

// stateEqual asserts the two states are identical down to float bit patterns.
func stateEqual(t *testing.T, label string, want, got *ScenarioState) {
	t.Helper()
	if got.Name != want.Name || got.Label != want.Label {
		t.Fatalf("%s: name/label %q/%q, want %q/%q", label, got.Name, got.Label, want.Name, want.Label)
	}
	if got.Epoch != want.Epoch || got.StaleFloor != want.StaleFloor {
		t.Fatalf("%s: epoch/floor %d/%d, want %d/%d", label, got.Epoch, got.StaleFloor, want.Epoch, want.StaleFloor)
	}
	if got.Target.String() != want.Target.String() {
		t.Fatalf("%s: target %s, want %s", label, got.Target, want.Target)
	}
	if len(got.Mappings) != len(want.Mappings) {
		t.Fatalf("%s: %d mappings, want %d", label, len(got.Mappings), len(want.Mappings))
	}
	for i := range want.Mappings {
		w, g := want.Mappings[i], got.Mappings[i]
		if g.ID != w.ID || math.Float64bits(g.Prob) != math.Float64bits(w.Prob) || g.Signature() != w.Signature() {
			t.Fatalf("%s: mapping %d = %v, want %v", label, i, g, w)
		}
	}
	if len(got.Relations) != len(want.Relations) {
		t.Fatalf("%s: %d relations, want %d", label, len(got.Relations), len(want.Relations))
	}
	for i := range want.Relations {
		w, g := want.Relations[i], got.Relations[i]
		if g.Name != w.Name || len(g.Columns) != len(w.Columns) {
			t.Fatalf("%s: relation %d = %s(%v), want %s(%v)", label, i, g.Name, g.Columns, w.Name, w.Columns)
		}
		for j := range w.Columns {
			if g.Columns[j] != w.Columns[j] {
				t.Fatalf("%s: relation %s columns %v, want %v", label, w.Name, g.Columns, w.Columns)
			}
		}
		if len(g.Rows) != len(w.Rows) {
			t.Fatalf("%s: relation %s has %d rows, want %d", label, w.Name, len(g.Rows), len(w.Rows))
		}
		for j := range w.Rows {
			if len(g.Rows[j]) != len(w.Rows[j]) {
				t.Fatalf("%s: relation %s row %d arity %d, want %d", label, w.Name, j, len(g.Rows[j]), len(w.Rows[j]))
			}
			for k := range w.Rows[j] {
				if !valueBitsEqual(g.Rows[j][k], w.Rows[j][k]) {
					t.Fatalf("%s: relation %s row %d col %d = %v, want %v", label, w.Name, j, k, g.Rows[j][k], w.Rows[j][k])
				}
			}
		}
	}
}

// instanceOf materializes the state's relations as an engine instance.
func instanceOf(st *ScenarioState) *engine.Instance {
	db := engine.NewInstance(st.Name)
	for _, rs := range st.Relations {
		rel := engine.NewRelation(rs.Name, rs.Columns)
		rel.Rows = append([]engine.Tuple(nil), rs.Rows...)
		db.AddRelation(rel)
	}
	return db
}

const testQuery = "SELECT a FROM T WHERE b = 2"

// evalState evaluates the fixture query over the state.
func evalState(t *testing.T, st *ScenarioState, method core.Method) *core.Result {
	t.Helper()
	q, err := query.Parse("q", st.Target, testQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewEvaluator(instanceOf(st), st.Mappings).Evaluate(q, core.Options{Method: method})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameAnswers asserts bit-identical results.
func sameAnswers(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		w, g := want.Answers[i], got.Answers[i]
		if !w.Tuple.EqualKey(g.Tuple) || w.Prob != g.Prob {
			t.Fatalf("%s: answer %d = %v@%v, want %v@%v", label, i, g.Tuple, g.Prob, w.Tuple, w.Prob)
		}
	}
	if want.EmptyProb != got.EmptyProb {
		t.Fatalf("%s: empty prob %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
}

// openTestStore opens a store over the FS with fsync on and auto-snapshots
// off (tests trigger snapshots explicitly).
func openTestStore(t *testing.T, fsys FS) *Store {
	t.Helper()
	st, err := Open("data", Options{FS: fsys, Fsync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// mutate runs a canonical mutation sequence against both the log and the
// in-memory state: three appends, a bump, two more appends.
func mutate(t *testing.T, log *Log, cur *ScenarioState) {
	t.Helper()
	appendRow := func(rel string, row engine.Tuple) {
		t.Helper()
		epoch := cur.Epoch + 1
		if err := log.AppendRow(rel, row, epoch); err != nil {
			t.Fatal(err)
		}
		for i := range cur.Relations {
			if cur.Relations[i].Name == rel {
				cur.Relations[i].Rows = append(cur.Relations[i].Rows, row)
			}
		}
		cur.Epoch = epoch
	}
	appendRow("S", sRow("added-α", 2, 9))
	appendRow("S", sRow("added-two", 5, 2))
	appendRow("W", engine.Tuple{engine.F(math.Inf(-1))})
	epoch := cur.Epoch + 1
	if err := log.Bump(epoch, epoch); err != nil {
		t.Fatal(err)
	}
	cur.Epoch, cur.StaleFloor = epoch, epoch
	appendRow("S", sRow("", 2, 2))
	appendRow("S", sRow("post-bump", 0, 2))
}

func walPath() string  { return path.Join("data", "scenarios", "test", walFile) }
func snapPath() string { return path.Join("data", "scenarios", "test", snapFile) }

func TestRegisterRecoverRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(10)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)

	// A fresh store over the same FS sees exactly the mutated state.
	st2 := openTestStore(t, fs)
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Quarantined) != 0 || len(rec.Scenarios) != 1 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	got := rec.Scenarios[0]
	stateEqual(t, "recovered", cur, got.State)
	if got.Replayed != 6 {
		t.Fatalf("replayed %d records, want 6 (five appends and a bump)", got.Replayed)
	}
	for _, m := range []core.Method{core.MethodBasic, core.MethodOSharing} {
		sameAnswers(t, m.String(), evalState(t, cur, m), evalState(t, got.State, m))
	}

	// The recovered log accepts appends that survive another recovery.
	if err := got.Log.AppendRow("S", sRow("post-recovery", 2, 0), got.State.Epoch+1); err != nil {
		t.Fatal(err)
	}
	rec2, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rec2.Scenarios); n != 1 {
		t.Fatalf("second recovery found %d scenarios", n)
	}
	if e := rec2.Scenarios[0].State.Epoch; e != cur.Epoch+1 {
		t.Fatalf("epoch after post-recovery append = %d, want %d", e, cur.Epoch+1)
	}
}

func TestSnapshotTruncatesWAL(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(50)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)
	grown := fs.FileSize(walPath())
	if err := log.Snapshot(cloneState(cur)); err != nil {
		t.Fatal(err)
	}
	if got := fs.FileSize(walPath()); got != len(walMagic) {
		t.Fatalf("WAL is %d bytes after snapshot, want bare %d-byte header (was %d)", got, len(walMagic), grown)
	}
	if fs.FileSize(snapPath()) <= 0 {
		t.Fatal("no snapshot file written")
	}
	if log.Records() != 0 {
		t.Fatalf("log reports %d records after snapshot", log.Records())
	}

	// Appends after the snapshot land in the fresh WAL and recovery folds
	// snapshot + tail together.
	if err := log.AppendRow("S", sRow("tail", 2, 1), cur.Epoch+1); err != nil {
		t.Fatal(err)
	}
	cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("tail", 2, 1))
	cur.Epoch++
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	stateEqual(t, "snapshot+tail", cur, rec.Scenarios[0].State)
	if rec.Scenarios[0].Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 (the tail append)", rec.Scenarios[0].Replayed)
	}
}

func TestTornTailKeepsCommittedPrefix(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(10)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)
	prefix := cloneState(cur)
	if err := log.AppendRow("S", sRow("doomed", 1, 1), cur.Epoch+1); err != nil {
		t.Fatal(err)
	}

	// Tear the last record: cut three bytes off the file, as a crash mid-
	// append would.
	size := fs.FileSize(walPath())
	if err := fs.Truncate(walPath(), int64(size-3)); err != nil {
		t.Fatal(err)
	}

	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	stateEqual(t, "torn tail", prefix, rec.Scenarios[0].State)

	// The torn bytes are physically gone: the next append must not leave a
	// corrupt sandwich in the middle of the file.
	if err := rec.Scenarios[0].Log.AppendRow("S", sRow("after-tear", 2, 2), prefix.Epoch+1); err != nil {
		t.Fatal(err)
	}
	rec2, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Scenarios) != 1 || len(rec2.Quarantined) != 0 {
		t.Fatalf("post-repair recovery: %d scenarios, %d quarantined", len(rec2.Scenarios), len(rec2.Quarantined))
	}
	if e := rec2.Scenarios[0].State.Epoch; e != prefix.Epoch+1 {
		t.Fatalf("epoch after post-repair append = %d, want %d", e, prefix.Epoch+1)
	}
}

func TestCorruptRecordQuarantines(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(10)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)

	// Flip one payload byte in the middle of the file: a full-length record
	// that fails its checksum, which no crash can produce.
	if err := fs.Corrupt(walPath(), fs.FileSize(walPath())/2, 0xFF); err != nil {
		t.Fatal(err)
	}
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 0 || len(rec.Quarantined) != 1 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	q := rec.Quarantined[0]
	if q.Name != "test" || !errors.Is(q.Err, ErrCorrupt) {
		t.Fatalf("quarantined %q with %v, want test with ErrCorrupt", q.Name, q.Err)
	}
	// The files are left in place for forensics.
	if fs.FileSize(walPath()) < 0 {
		t.Fatal("quarantine removed the WAL")
	}
}

func TestCorruptSnapshotQuarantines(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(10)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)
	if err := log.Snapshot(cloneState(cur)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Corrupt(snapPath(), fs.FileSize(snapPath())-1, 0x01); err != nil {
		t.Fatal(err)
	}
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 0 || len(rec.Quarantined) != 1 || !errors.Is(rec.Quarantined[0].Err, ErrCorrupt) {
		t.Fatalf("recovered %d scenarios, quarantined %v", len(rec.Scenarios), rec.Quarantined)
	}
}

func TestNewerFormatRefused(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("data"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(path.Join("data", versionFile))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, "%s%d\n", versionPrefix, FormatVersion+1)
	f.Close()
	if _, err := Open("data", Options{FS: fs}); !errors.Is(err, ErrNewerFormat) {
		t.Fatalf("Open = %v, want ErrNewerFormat", err)
	}
}

func TestGarbageVersionIsCorrupt(t *testing.T) {
	fs := NewMemFS()
	if err := fs.MkdirAll("data"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(path.Join("data", versionFile))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "not-a-store")
	f.Close()
	if _, err := Open("data", Options{FS: fs}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestFsyncFailureIsSticky(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(5)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendRow("S", sRow("ok", 1, 1), 1); err != nil {
		t.Fatal(err)
	}
	fail := errors.New("disk on fire")
	fs.SyncErr = func(string) error { return fail }
	if err := log.AppendRow("S", sRow("lost", 2, 2), 2); !errors.Is(err, fail) {
		t.Fatalf("append with failing fsync = %v, want wrapped %v", err, fail)
	}
	// The failure is sticky even after fsync recovers: the tail may hold a
	// partial record, and appending past it would corrupt the log.
	fs.SyncErr = nil
	if err := log.AppendRow("S", sRow("refused", 3, 3), 2); err == nil {
		t.Fatal("append after fsync failure succeeded; sticky error expected")
	}
	if err := log.Err(); err == nil {
		t.Fatal("Err() is nil after fsync failure")
	}
	if n := st.PersistErrors(); n != 1 {
		t.Fatalf("PersistErrors = %d, want 1", n)
	}
	// Recovery still yields the committed prefix: the record whose fsync
	// failed is present (write-through model) and checksummed, so it may or
	// may not survive a real crash — here it does, and that is a legal
	// superset of the acknowledged prefix.
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	if e := rec.Scenarios[0].State.Epoch; e < 1 || e > 2 {
		t.Fatalf("recovered epoch %d, want 1 or 2", e)
	}
}

func TestShortReadRecoversPrefix(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(10)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	prefix := cloneState(cur)
	if err := log.AppendRow("S", sRow("tail-row", 1, 1), 1); err != nil {
		t.Fatal(err)
	}
	fs.ReadHook = func(p string, data []byte) []byte {
		if p == walPath() && len(data) > 5 {
			return data[:len(data)-5] // the device serves a short read of the tail
		}
		return data
	}
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	stateEqual(t, "short read", prefix, rec.Scenarios[0].State)
}

func TestDropIsDurableAgainstCrash(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(5)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)

	// Crash budget: the drop record fits, the directory removal does not —
	// the worst case, where surviving files could resurrect the scenario.
	dropRecordBytes := int64(8 + 1) // frame header + one type byte
	fs.CrashAfter(dropRecordBytes)
	if err := log.Drop(); err == nil {
		t.Fatal("Drop succeeded through a crash")
	}
	rec, err := openTestStore(t, fs.Clone()).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("dropped scenario resurrected: %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
}

func TestDropRemovesScenario(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	log, err := st.Register(cloneState(testState(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Drop(); err != nil {
		t.Fatal(err)
	}
	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 0 || len(rec.Quarantined) != 0 {
		t.Fatalf("after drop: %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
}

func TestRegisterRefusesExistingData(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	if _, err := st.Register(cloneState(testState(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Register(cloneState(testState(3))); err == nil {
		t.Fatal("second Register over live on-disk data succeeded")
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: true, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	cur := testState(20)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}
	mutate(t, log, cur)
	if err := log.Snapshot(cloneState(cur)); err != nil {
		t.Fatal(err)
	}
	if err := log.AppendRow("S", sRow("on-disk", 2, 0), cur.Epoch+1); err != nil {
		t.Fatal(err)
	}
	cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("on-disk", 2, 0))
	cur.Epoch++
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	stateEqual(t, "osfs", cur, rec.Scenarios[0].State)
	sameAnswers(t, "osfs answers", evalState(t, cur, core.MethodOSharing), evalState(t, rec.Scenarios[0].State, core.MethodOSharing))
}
