package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk layout.  Both files start with an 8-byte magic; every record after
// it is framed as
//
//	u32 payload length | u32 CRC32-C of payload | payload
//
// (little endian).  The frame is written with a single Write call, so a crash
// can leave at most one partial record, and only at the tail.  The first
// payload byte is the record type; Register and Snapshot payloads carry a
// full ScenarioState, AppendRow and Bump carry deltas stamped with the epoch
// the mutation committed at.
const (
	walMagic  = "URMWAL1\n"
	snapMagic = "URMSNP1\n"
)

// Record types.
const (
	recRegister   byte = 1 // full state; always the first record of a fresh WAL
	recAppendRow  byte = 2 // epoch, relation, row
	recBump       byte = 3 // epoch, stale floor
	recDrop       byte = 4 // scenario deleted; recovery removes the directory
	recSnapshot   byte = 5 // full state; only in snapshot files
	recAppendRows byte = 6 // epoch, relation, row count, rows — one batch, one epoch step
)

// maxRecordBytes bounds a single record; a declared length beyond it is
// corruption, not a record the store could ever have written.
const maxRecordBytes = 1 << 30

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame wraps a payload in the record format, as one contiguous buffer so the
// append is a single Write.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[8:], payload)
	return buf
}

// scanStatus classifies what walScan.next found.
type scanStatus int

const (
	scanRecord  scanStatus = iota // a whole, checksummed record
	scanEnd                       // clean end of file
	scanTorn                      // file ends inside a record: crash mid-append
	scanCorrupt                   // full-length record failing its checksum, or an impossible length
)

// walScan walks the records of a WAL or snapshot body (after the magic).
type walScan struct {
	data []byte
	off  int
	err  error // set when status is scanCorrupt
}

// next returns the next record payload.  scanTorn leaves off at the start of
// the partial record, the truncation point that discards it.
func (s *walScan) next() ([]byte, scanStatus) {
	rem := len(s.data) - s.off
	if rem == 0 {
		return nil, scanEnd
	}
	if rem < 8 {
		return nil, scanTorn
	}
	length := binary.LittleEndian.Uint32(s.data[s.off : s.off+4])
	if length > maxRecordBytes {
		s.err = fmt.Errorf("%w: record at offset %d declares impossible length %d", ErrCorrupt, s.off, length)
		return nil, scanCorrupt
	}
	if rem < 8+int(length) {
		return nil, scanTorn
	}
	want := binary.LittleEndian.Uint32(s.data[s.off+4 : s.off+8])
	payload := s.data[s.off+8 : s.off+8+int(length)]
	if got := crc32.Checksum(payload, castagnoli); got != want {
		s.err = fmt.Errorf("%w: record at offset %d checksum %08x, want %08x", ErrCorrupt, s.off, got, want)
		return nil, scanCorrupt
	}
	s.off += 8 + int(length)
	return payload, scanRecord
}
