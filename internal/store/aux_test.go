package store

import (
	"errors"
	"testing"
)

func TestAuxRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("/data", Options{FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := st.LoadAux("leases"); !errors.Is(err, ErrAuxNotFound) {
		t.Fatalf("load before save: %v, want ErrAuxNotFound", err)
	}
	want := []byte(`{"shards":4}`)
	if err := st.SaveAux("leases", want); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := st.LoadAux("leases")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("load = %q, want %q", got, want)
	}
	// Overwrite is atomic replacement.
	want2 := []byte(`{"shards":8}`)
	if err := st.SaveAux("leases", want2); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	if got, err = st.LoadAux("leases"); err != nil || string(got) != string(want2) {
		t.Fatalf("load 2 = %q, %v, want %q", got, err, want2)
	}
	// Survives reopening the directory.
	st2, err := Open("/data", Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, err = st2.LoadAux("leases"); err != nil || string(got) != string(want2) {
		t.Fatalf("load after reopen = %q, %v, want %q", got, err, want2)
	}
}

func TestAuxRejectsBadNamesAndCorruption(t *testing.T) {
	fs := NewMemFS()
	st, err := Open("/data", Options{FS: fs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for _, name := range []string{"", "UPPER", "a/b", "a.b"} {
		if err := st.SaveAux(name, []byte("x")); err == nil {
			t.Errorf("SaveAux(%q) accepted an invalid name", name)
		}
	}
	if err := st.SaveAux("t", []byte("payload")); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Flip a payload byte: checksum must catch it.
	path := "/data/aux/t.aux"
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("read raw: %v", err)
	}
	data[len(data)-1] ^= 0xFF
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	f.Close()
	if _, err := st.LoadAux("t"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load corrupted: %v, want ErrCorrupt", err)
	}
}
