// Package store is the durable scenario store: a per-scenario append-only
// write-ahead log of checksummed mutation records plus periodic checksummed
// snapshots that truncate the log.  Recovery replays snapshot + WAL tail and
// classifies damage: a torn tail (the file ends mid-record, the signature of a
// crash during an append) is truncated away and the committed prefix survives;
// a checksum mismatch on a fully present record (bit rot, manual editing,
// version skew) quarantines the scenario so the rest of the node keeps
// serving.
//
// Every byte of file I/O goes through the FS interface below.  Production
// uses the thin os wrapper; tests use MemFS, which can cut power after any
// written byte, fail fsyncs, and serve short reads — the same deterministic
// fault-seam idea as internal/qos.Faults, but for the disk.
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam.  Paths are plain slash-joined strings; the store
// never walks outside the root directory it was opened with.
type FS interface {
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(path string) error
	// ReadDir returns the names of the subdirectories of path, sorted.
	// Regular files are not listed; a missing directory is an error
	// satisfying errors.Is(err, fs.ErrNotExist).
	ReadDir(path string) ([]string, error)
	// ReadFile returns the full content of the file.  A missing file is an
	// error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Create opens the file for writing, truncating it if it exists.
	Create(path string) (File, error)
	// OpenAppend opens the file for appending, creating it if missing.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes a file; missing is not an error.
	Remove(path string) error
	// RemoveAll deletes a file or directory tree; missing is not an error.
	RemoveAll(path string) error
	// Truncate shrinks the file to size bytes.
	Truncate(path string, size int64) error
	// SyncDir flushes directory metadata (created/renamed/removed entries)
	// to stable storage.
	SyncDir(path string) error
}

// File is an open writable file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	Close() error
}

// OSFS returns the production FS backed by the os package.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error {
	err := os.Remove(path)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	closeErr := d.Close()
	if err != nil {
		// Some filesystems reject fsync on directories; the rename/create
		// itself is still ordered on anything the tests run on.
		if errors.Is(err, errors.ErrUnsupported) {
			return closeErr
		}
		return err
	}
	return closeErr
}
