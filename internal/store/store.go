package store

import (
	"errors"
	"fmt"
	"io/fs"
	"net/url"
	"path"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/probdb/urm/internal/engine"
)

// Sentinel errors.
var (
	// ErrCorrupt marks data that is structurally damaged beyond the torn-tail
	// pattern a crash can produce: a checksum mismatch on a whole record, an
	// impossible length, a payload that does not decode.  Recovery quarantines
	// the affected scenario rather than guessing.
	ErrCorrupt = errors.New("store: corrupt data")
	// ErrNewerFormat means the data directory was written by a newer store
	// version; opening it read-write could destroy data this build cannot
	// parse, so Open refuses.
	ErrNewerFormat = errors.New("store: data directory uses a newer format version")
)

// FormatVersion is the on-disk format this build reads and writes, recorded
// in <dir>/VERSION as "urm-store-v<N>".
const FormatVersion = 1

const (
	versionFile   = "VERSION"
	versionPrefix = "urm-store-v"
	walFile       = "wal.log"
	snapFile      = "snapshot.snap"
	snapTmpFile   = "snapshot.tmp"
)

// Options tunes Open.
type Options struct {
	// FS overrides the filesystem; nil uses the real one.  Tests inject MemFS.
	FS FS
	// Fsync syncs the WAL after every mutation record.  Off, durability of
	// appends is at the OS's discretion — recovery still yields a committed
	// prefix, just possibly a shorter one.  Registration, snapshots and drops
	// are always synced regardless; they are rare and anchor everything else.
	Fsync bool
	// SnapshotEvery is how many WAL records accumulate before the next
	// mutation triggers a snapshot that truncates the log.  0 means the
	// default (256); negative disables automatic snapshots.
	SnapshotEvery int
}

const defaultSnapshotEvery = 256

// Store is one open data directory.  It hands out one Log per scenario;
// Store itself is safe for concurrent use, each Log serializes internally.
type Store struct {
	fs            FS
	dir           string
	fsync         bool
	snapshotEvery int

	persistErrors atomic.Int64
}

// Open opens (creating if needed) the data directory and verifies its format
// version.  A directory written by a newer version fails with ErrNewerFormat;
// an unparseable VERSION file fails with ErrCorrupt.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	every := opts.SnapshotEvery
	if every == 0 {
		every = defaultSnapshotEvery
	}
	st := &Store{fs: fsys, dir: dir, fsync: opts.Fsync, snapshotEvery: every}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	if err := st.checkVersion(); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(st.scenariosDir()); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return st, nil
}

// checkVersion reads <dir>/VERSION, writing it (atomically: tmp, fsync,
// rename) when the directory is fresh.  A missing VERSION with existing
// scenario data can only come from a crash before the very first version
// write, i.e. before any scenario data existed — so rewriting is safe.
func (st *Store) checkVersion() error {
	vpath := path.Join(st.dir, versionFile)
	data, err := st.fs.ReadFile(vpath)
	if errors.Is(err, fs.ErrNotExist) {
		tmp := vpath + ".tmp"
		f, err := st.fs.Create(tmp)
		if err != nil {
			return fmt.Errorf("store: write version: %w", err)
		}
		if _, err := fmt.Fprintf(f, "%s%d\n", versionPrefix, FormatVersion); err != nil {
			f.Close()
			return fmt.Errorf("store: write version: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: write version: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("store: write version: %w", err)
		}
		if err := st.fs.Rename(tmp, vpath); err != nil {
			return fmt.Errorf("store: write version: %w", err)
		}
		return st.fs.SyncDir(st.dir)
	}
	if err != nil {
		return fmt.Errorf("store: read version: %w", err)
	}
	s := strings.TrimSpace(string(data))
	rest, ok := strings.CutPrefix(s, versionPrefix)
	if !ok {
		return fmt.Errorf("%w: VERSION file %q", ErrCorrupt, s)
	}
	v, err := strconv.Atoi(rest)
	if err != nil || v < 1 {
		return fmt.Errorf("%w: VERSION file %q", ErrCorrupt, s)
	}
	if v > FormatVersion {
		return fmt.Errorf("%w: directory is %q, this build reads up to %q%d", ErrNewerFormat, s, versionPrefix, FormatVersion)
	}
	return nil
}

// Dir returns the data directory the store was opened with.
func (st *Store) Dir() string { return st.dir }

// Fsync reports whether per-record fsync is on.
func (st *Store) Fsync() bool { return st.fsync }

// SnapshotEvery returns the snapshot cadence in WAL records (<0 disabled).
func (st *Store) SnapshotEvery() int { return st.snapshotEvery }

// PersistErrors returns the count of persistence failures (failed appends,
// fsyncs, snapshots, drops) since the store was opened.  A non-zero count
// means some scenario logs have gone sticky-broken and stopped accepting
// mutations; served answers remain correct.
func (st *Store) PersistErrors() int64 { return st.persistErrors.Load() }

func (st *Store) scenariosDir() string { return path.Join(st.dir, "scenarios") }

func (st *Store) scenarioDir(name string) string {
	return path.Join(st.scenariosDir(), url.PathEscape(name))
}

// Register durably creates a scenario: a fresh WAL whose first record is the
// full initial state.  The record and the directory entries are fsynced
// before Register returns regardless of the fsync option — a registration
// that has been acknowledged must survive any crash.  It fails if the
// scenario already has data on disk (recover or drop it first).
func (st *Store) Register(state *ScenarioState) (*Log, error) {
	if state == nil || state.Name == "" {
		return nil, fmt.Errorf("store: register: empty scenario state")
	}
	sdir := st.scenarioDir(state.Name)
	if _, err := st.fs.ReadFile(path.Join(sdir, walFile)); err == nil {
		return nil, fmt.Errorf("store: register %s: scenario already present on disk", state.Name)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	if err := st.fs.MkdirAll(sdir); err != nil {
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	w, err := st.fs.Create(path.Join(sdir, walFile))
	if err != nil {
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	buf := append([]byte(walMagic), frame(encodeState(recRegister, state))...)
	if _, err := w.Write(buf); err != nil {
		w.Close()
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	if err := st.fs.SyncDir(sdir); err != nil {
		w.Close()
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	if err := st.fs.SyncDir(st.scenariosDir()); err != nil {
		w.Close()
		return nil, fmt.Errorf("store: register %s: %w", state.Name, err)
	}
	return &Log{st: st, name: state.Name, dir: sdir, w: w, records: 1}, nil
}

// Log is the open WAL of one scenario.  All methods serialize on an internal
// mutex; a failed append or fsync is sticky — the file may hold a partial
// record at that point, and appending past it would turn a clean torn tail
// into checksum corruption.
type Log struct {
	st   *Store
	name string
	dir  string

	mu      sync.Mutex
	w       File
	records int   // records in the current WAL file
	err     error // sticky persistence failure
	closed  bool
}

// Name returns the scenario name the log belongs to.
func (l *Log) Name() string { return l.name }

// Err returns the sticky persistence failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Records returns the number of records in the current WAL file.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// ShouldSnapshot reports whether the WAL has grown past the snapshot cadence.
func (l *Log) ShouldSnapshot() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.snapshotEvery > 0 && l.records > l.st.snapshotEvery
}

// AppendRow logs a row append that committed at the given epoch.
func (l *Log) AppendRow(relation string, row engine.Tuple, epoch uint64) error {
	return l.append(encodeAppendRow(epoch, relation, row))
}

// AppendRows logs a whole batch of rows for one relation that committed as a
// single epoch step: one WAL record, one write, one fsync — the durability
// cost of the batch is that of a single row.
func (l *Log) AppendRows(relation string, rows []engine.Tuple, epoch uint64) error {
	return l.append(encodeAppendRows(epoch, relation, rows))
}

// Bump logs an epoch bump.
func (l *Log) Bump(epoch, staleFloor uint64) error {
	return l.append(encodeBump(epoch, staleFloor))
}

func (l *Log) append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if _, err := l.w.Write(frame(payload)); err != nil {
		l.failLocked(err)
		return l.err
	}
	if l.st.fsync {
		if err := l.w.Sync(); err != nil {
			l.failLocked(err)
			return l.err
		}
	}
	l.records++
	return nil
}

func (l *Log) usableLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.closed || l.w == nil {
		return fmt.Errorf("store: scenario %s: log closed", l.name)
	}
	return nil
}

func (l *Log) failLocked(err error) {
	l.err = fmt.Errorf("store: scenario %s: %w", l.name, err)
	l.st.persistErrors.Add(1)
}

// Snapshot durably writes the full state and truncates the WAL.  The
// snapshot file is written to the side, fsynced, then renamed over the old
// one, so a crash anywhere leaves either the old or the new snapshot intact;
// replay of a stale WAL on top of a newer snapshot is idempotent because
// every record carries its epoch.  A failure before the rename leaves the log
// usable (the WAL still covers everything); a failure while rotating the WAL
// afterwards is sticky.
func (l *Log) Snapshot(state *ScenarioState) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	tmp := path.Join(l.dir, snapTmpFile)
	werr := func(err error) error {
		_ = l.st.fs.Remove(tmp)
		l.st.persistErrors.Add(1)
		return fmt.Errorf("store: scenario %s: snapshot: %w", l.name, err)
	}
	f, err := l.st.fs.Create(tmp)
	if err != nil {
		return werr(err)
	}
	buf := append([]byte(snapMagic), frame(encodeState(recSnapshot, state))...)
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return werr(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return werr(err)
	}
	if err := f.Close(); err != nil {
		return werr(err)
	}
	if err := l.st.fs.Rename(tmp, path.Join(l.dir, snapFile)); err != nil {
		return werr(err)
	}
	if err := l.st.fs.SyncDir(l.dir); err != nil {
		return werr(err)
	}
	// The snapshot is durable; start a fresh WAL.  From here on, failure is
	// sticky: a half-rotated WAL must not take further appends.
	if err := l.resetWALLocked(); err != nil {
		l.failLocked(err)
		return l.err
	}
	l.records = 0
	return nil
}

// resetWALLocked truncates the WAL to a bare header.  Callers hold l.mu.
func (l *Log) resetWALLocked() error {
	if l.w != nil {
		l.w.Close()
		l.w = nil
	}
	w, err := l.st.fs.Create(path.Join(l.dir, walFile))
	if err != nil {
		return err
	}
	if _, err := w.Write([]byte(walMagic)); err != nil {
		w.Close()
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	l.w = w
	return nil
}

// Drop durably deletes the scenario: a drop record is fsynced into the WAL
// first, so a crash during the subsequent directory removal cannot resurrect
// the scenario from whichever files survived.
func (l *Log) Drop() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: scenario %s: log closed", l.name)
	}
	if l.err == nil && l.w != nil {
		buf := frame([]byte{recDrop})
		if _, err := l.w.Write(buf); err == nil {
			_ = l.w.Sync()
		}
	}
	if l.w != nil {
		l.w.Close()
		l.w = nil
	}
	l.closed = true
	if err := l.st.fs.RemoveAll(l.dir); err != nil {
		l.st.persistErrors.Add(1)
		return fmt.Errorf("store: scenario %s: drop: %w", l.name, err)
	}
	return l.st.fs.SyncDir(l.st.scenariosDir())
}

// Close releases the WAL file handle; further mutations fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if l.w != nil {
		err := l.w.Close()
		l.w = nil
		return err
	}
	return nil
}

// RecoveredScenario is one scenario rebuilt from disk, with its log reopened
// for appending.
type RecoveredScenario struct {
	State *ScenarioState
	Log   *Log
	// Replayed counts the WAL records applied on top of the base state
	// (snapshot or register record).
	Replayed int
}

// QuarantinedScenario is one scenario whose on-disk state recovery could not
// trust.  Its files are left untouched for forensics; the serving layer
// answers 503 for it.
type QuarantinedScenario struct {
	Name string
	Err  error
}

// Recovery is the outcome of Store.Recover.
type Recovery struct {
	Scenarios   []*RecoveredScenario
	Quarantined []QuarantinedScenario
	// ReplayedRecords sums Replayed over all recovered scenarios.
	ReplayedRecords int
}

// errGarbage marks a scenario directory with no committed state: an
// interrupted registration or an interrupted drop.  Recovery removes it.
var errGarbage = errors.New("no committed state")

// Recover scans the data directory and rebuilds every scenario: snapshot (if
// any) plus WAL tail.  A torn tail — the unique signature of a crash mid-
// append — is truncated away, keeping the committed prefix.  Anything else
// that fails validation (checksum mismatch, undecodable payload, epoch gaps)
// quarantines that one scenario; the rest recover normally.  Directories
// holding no committed state (a registration or drop that never completed)
// are removed.
func (st *Store) Recover() (*Recovery, error) {
	names, err := st.fs.ReadDir(st.scenariosDir())
	if err != nil {
		return nil, fmt.Errorf("store: recover: %w", err)
	}
	rec := &Recovery{}
	for _, dirName := range names {
		sdir := path.Join(st.scenariosDir(), dirName)
		name := dirName
		if u, err := url.PathUnescape(dirName); err == nil {
			name = u
		}
		rs, err := st.recoverScenario(name, sdir)
		switch {
		case errors.Is(err, errGarbage):
			_ = st.fs.RemoveAll(sdir)
			_ = st.fs.SyncDir(st.scenariosDir())
		case err != nil:
			rec.Quarantined = append(rec.Quarantined, QuarantinedScenario{Name: name, Err: err})
		default:
			rec.Scenarios = append(rec.Scenarios, rs)
			rec.ReplayedRecords += rs.Replayed
		}
	}
	return rec, nil
}

// recoverScenario rebuilds one scenario directory.  It returns errGarbage
// when the directory holds no committed state, or an ErrCorrupt-wrapped error
// when the state cannot be trusted (the caller quarantines).
func (st *Store) recoverScenario(name, sdir string) (*RecoveredScenario, error) {
	// A leftover snapshot.tmp is an interrupted snapshot write; the WAL still
	// covers its contents.
	_ = st.fs.Remove(path.Join(sdir, snapTmpFile))

	var base *ScenarioState
	snapData, err := st.fs.ReadFile(path.Join(sdir, snapFile))
	switch {
	case err == nil:
		base, err = decodeStateFile(snapData, snapMagic, recSnapshot)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	case !errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("snapshot: %w", err)
	}

	walPath := path.Join(sdir, walFile)
	walData, err := st.fs.ReadFile(walPath)
	if errors.Is(err, fs.ErrNotExist) {
		// No WAL at all.  Every committed scenario has one (rotation
		// truncates in place, never removes), so this directory is the debris
		// of an interrupted drop or registration — even if a snapshot
		// survived, the fsynced drop record preceding the removal says it is
		// dead.
		return nil, errGarbage
	} else if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}

	replayed := 0
	walRecords := 0
	tornAt := -1 // byte offset to truncate the WAL to; -1 = intact
	rewriteHeader := false
	dropped := false
	relIndex := make(map[string]int)
	indexRelations := func() {
		for i, r := range base.Relations {
			relIndex[r.Name] = i
		}
	}
	if base != nil {
		indexRelations()
	}

	switch {
	case len(walData) < len(walMagic):
		// Crash while writing the very header (fresh registration or WAL
		// rotation).  With a snapshot the state is fully covered; without
		// one, nothing was ever committed.
		if base == nil {
			return nil, errGarbage
		}
		rewriteHeader = true
	case string(walData[:len(walMagic)]) != walMagic:
		return nil, fmt.Errorf("wal: %w: bad magic %q", ErrCorrupt, walData[:len(walMagic)])
	default:
		s := &walScan{data: walData, off: len(walMagic)}
	scan:
		for {
			payload, status := s.next()
			switch status {
			case scanEnd:
				break scan
			case scanTorn:
				tornAt = s.off
				break scan
			case scanCorrupt:
				return nil, fmt.Errorf("wal: %w", s.err)
			}
			if len(payload) == 0 {
				return nil, fmt.Errorf("wal: %w: empty record", ErrCorrupt)
			}
			walRecords++
			switch payload[0] {
			case recRegister:
				d := &dec{b: payload, off: 1}
				stt, err := decodeState(d)
				if err == nil && d.off != len(payload) {
					err = fmt.Errorf("%w: %d trailing bytes in register record", ErrCorrupt, len(payload)-d.off)
				}
				if err != nil {
					return nil, fmt.Errorf("wal: %w", err)
				}
				switch {
				case base == nil:
					base = stt
					indexRelations()
				case stt.Epoch > base.Epoch:
					return nil, fmt.Errorf("wal: %w: register record epoch %d above snapshot epoch %d", ErrCorrupt, stt.Epoch, base.Epoch)
				default:
					// The WAL predates the snapshot (crash between snapshot
					// rename and WAL rotation); every record at or below the
					// snapshot epoch is already folded in.
				}
			case recAppendRow:
				if base == nil {
					return nil, fmt.Errorf("wal: %w: append before register", ErrCorrupt)
				}
				d := &dec{b: payload, off: 1}
				epoch := d.u64()
				relName := d.str()
				row := d.tuple()
				if d.err == nil && d.off != len(payload) {
					d.fail("%d trailing bytes in append record", len(payload)-d.off)
				}
				if d.err != nil {
					return nil, fmt.Errorf("wal: %w", d.err)
				}
				if epoch <= base.Epoch {
					continue // already folded into the snapshot
				}
				if epoch != base.Epoch+1 {
					return nil, fmt.Errorf("wal: %w: epoch jumps %d -> %d", ErrCorrupt, base.Epoch, epoch)
				}
				ri, ok := relIndex[relName]
				if !ok {
					return nil, fmt.Errorf("wal: %w: append to unknown relation %q", ErrCorrupt, relName)
				}
				rel := &base.Relations[ri]
				if len(row) != len(rel.Columns) {
					return nil, fmt.Errorf("wal: %w: relation %s row arity %d, want %d", ErrCorrupt, relName, len(row), len(rel.Columns))
				}
				rel.Rows = append(rel.Rows, row)
				base.Epoch = epoch
				replayed++
			case recAppendRows:
				if base == nil {
					return nil, fmt.Errorf("wal: %w: append before register", ErrCorrupt)
				}
				d := &dec{b: payload, off: 1}
				epoch := d.u64()
				relName := d.str()
				nrows := d.count(1)
				rows := make([]engine.Tuple, 0, nrows)
				for j := 0; j < nrows && d.err == nil; j++ {
					rows = append(rows, d.tuple())
				}
				if d.err == nil && d.off != len(payload) {
					d.fail("%d trailing bytes in append record", len(payload)-d.off)
				}
				if d.err != nil {
					return nil, fmt.Errorf("wal: %w", d.err)
				}
				if epoch <= base.Epoch {
					continue // already folded into the snapshot
				}
				if epoch != base.Epoch+1 {
					return nil, fmt.Errorf("wal: %w: epoch jumps %d -> %d", ErrCorrupt, base.Epoch, epoch)
				}
				ri, ok := relIndex[relName]
				if !ok {
					return nil, fmt.Errorf("wal: %w: append to unknown relation %q", ErrCorrupt, relName)
				}
				rel := &base.Relations[ri]
				for _, row := range rows {
					if len(row) != len(rel.Columns) {
						return nil, fmt.Errorf("wal: %w: relation %s row arity %d, want %d", ErrCorrupt, relName, len(row), len(rel.Columns))
					}
				}
				rel.Rows = append(rel.Rows, rows...)
				base.Epoch = epoch
				replayed++
			case recBump:
				if base == nil {
					return nil, fmt.Errorf("wal: %w: bump before register", ErrCorrupt)
				}
				d := &dec{b: payload, off: 1}
				epoch := d.u64()
				floor := d.u64()
				if d.err == nil && d.off != len(payload) {
					d.fail("%d trailing bytes in bump record", len(payload)-d.off)
				}
				if d.err != nil {
					return nil, fmt.Errorf("wal: %w", d.err)
				}
				if epoch <= base.Epoch {
					continue
				}
				if epoch != base.Epoch+1 {
					return nil, fmt.Errorf("wal: %w: epoch jumps %d -> %d", ErrCorrupt, base.Epoch, epoch)
				}
				base.Epoch = epoch
				if floor > base.StaleFloor {
					base.StaleFloor = floor
				}
				replayed++
			case recDrop:
				dropped = true
				break scan
			default:
				return nil, fmt.Errorf("wal: %w: unknown record type %d", ErrCorrupt, payload[0])
			}
		}
	}
	if dropped || base == nil {
		return nil, errGarbage
	}
	if base.Name != name {
		return nil, fmt.Errorf("wal: %w: directory for %q holds state of %q", ErrCorrupt, name, base.Name)
	}

	// Repair the tail, then reopen for appending.
	log := &Log{st: st, name: base.Name, dir: sdir, records: walRecords}
	if rewriteHeader {
		if err := log.resetWALLocked(); err != nil {
			return nil, fmt.Errorf("wal: reopen: %w", err)
		}
	} else {
		if tornAt >= 0 {
			if err := st.fs.Truncate(walPath, int64(tornAt)); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
			}
		}
		w, err := st.fs.OpenAppend(walPath)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen: %w", err)
		}
		log.w = w
	}
	return &RecoveredScenario{State: base, Log: log, Replayed: replayed}, nil
}

// decodeStateFile parses a single-record state file (a snapshot): magic, one
// framed record of the expected type, nothing after it.  Snapshots are
// fsynced before they are renamed into place, so unlike the WAL there is no
// legitimate torn form: any damage is ErrCorrupt.
func decodeStateFile(data []byte, magic string, wantType byte) (*ScenarioState, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	s := &walScan{data: data, off: len(magic)}
	payload, status := s.next()
	if status != scanRecord {
		if s.err != nil {
			return nil, s.err
		}
		return nil, fmt.Errorf("%w: incomplete state record", ErrCorrupt)
	}
	if s.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-s.off)
	}
	if len(payload) == 0 || payload[0] != wantType {
		return nil, fmt.Errorf("%w: unexpected record type", ErrCorrupt)
	}
	d := &dec{b: payload, off: 1}
	st, err := decodeState(d)
	if err != nil {
		return nil, err
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes in state record", ErrCorrupt, len(payload)-d.off)
	}
	return st, nil
}
