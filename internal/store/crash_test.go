package store

import (
	"fmt"
	"math"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
)

// TestCrashAtEveryPoint is the generative crash-point test: it runs a fixed
// mutation sequence (register, appends, bump, snapshot, more appends, a
// second snapshot mid-growth) against a MemFS once to learn its total cost in
// fault units, then replays the sequence once per possible crash point —
// after every written byte and every metadata operation, including inside
// Open's version write, inside the register record, between a snapshot's
// rename and its WAL rotation, and mid-append.
//
// For every crash point it asserts recovery of the durable image yields
// exactly the state of the last acknowledged mutation — never a torn suffix,
// never a lost acked write, never a quarantine — and, for each distinct
// recovered epoch, that query answers over the recovered state are
// bit-identical to the never-crashed reference.
func TestCrashAtEveryPoint(t *testing.T) {
	// committed[epoch] is the reference state after the mutation that
	// produced that epoch; answers[epoch] is lazily evaluated from it.
	committed := map[uint64]*ScenarioState{}
	answers := map[uint64]*core.Result{}

	// run executes the sequence until the first error (the crash), tracking
	// the highest epoch whose mutation was acknowledged.  registered reports
	// whether the initial registration was acked.
	run := func(fs *MemFS) (ackedEpoch uint64, registered bool) {
		st, err := Open("data", Options{FS: fs, Fsync: true, SnapshotEvery: -1})
		if err != nil {
			return 0, false
		}
		cur := testState(6)
		log, err := st.Register(cloneState(cur))
		if err != nil {
			return 0, false
		}
		registered = true
		record := func() {
			if committed[cur.Epoch] == nil {
				committed[cur.Epoch] = cloneState(cur)
			}
		}
		record()

		wRow := engine.Tuple{engine.F(math.NaN())}
		ops := []func() error{
			func() error { return log.AppendRow("S", sRow("crash-α", 2, 9), cur.Epoch+1) },
			func() error { return log.AppendRow("W", wRow, cur.Epoch+1) },
			func() error { return log.Bump(cur.Epoch+1, cur.Epoch+1) },
			func() error { return log.Snapshot(cloneState(cur)) },
			func() error { return log.AppendRow("S", sRow("post-snap", 5, 2), cur.Epoch+1) },
			func() error { return log.AppendRow("S", sRow("k01", 2, 2), cur.Epoch+1) },
			func() error { return log.Snapshot(cloneState(cur)) },
			func() error { return log.AppendRow("S", sRow("final", 2, 0), cur.Epoch+1) },
		}
		apply := []func(){
			func() { cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("crash-α", 2, 9)); cur.Epoch++ },
			func() { cur.Relations[1].Rows = append(cur.Relations[1].Rows, wRow); cur.Epoch++ },
			func() { cur.Epoch++; cur.StaleFloor = cur.Epoch },
			func() {}, // snapshot changes no state
			func() { cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("post-snap", 5, 2)); cur.Epoch++ },
			func() { cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("k01", 2, 2)); cur.Epoch++ },
			func() {},
			func() { cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("final", 2, 0)); cur.Epoch++ },
		}
		for i, op := range ops {
			if err := op(); err != nil {
				return cur.Epoch, true
			}
			apply[i]()
			record()
		}
		return cur.Epoch, true
	}

	// Reference run: no crash scheduled.  Its unit count bounds the sweep.
	ref := NewMemFS()
	finalEpoch, ok := run(ref)
	if !ok || ref.Crashed() {
		t.Fatal("reference run failed")
	}
	total := ref.Used()
	if total < 100 {
		t.Fatalf("reference run consumed only %d units; harness is not exercising the store", total)
	}

	for c := int64(0); c <= total; c++ {
		fs := NewMemFS()
		fs.CrashAfter(c)
		ackedEpoch, registered := run(fs)
		crashed := fs.Crashed()
		if !crashed && c < total {
			t.Fatalf("crash budget %d/%d never tripped", c, total)
		}

		st, err := Open("data", Options{FS: fs.Clone(), Fsync: true, SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("crash %d: reopening durable image: %v", c, err)
		}
		rec, err := st.Recover()
		if err != nil {
			t.Fatalf("crash %d: recover: %v", c, err)
		}
		if len(rec.Quarantined) != 0 {
			t.Fatalf("crash %d: quarantined %v — a clean crash must never look like corruption", c, rec.Quarantined)
		}
		if len(rec.Scenarios) == 0 {
			if registered {
				t.Fatalf("crash %d: acked registration lost", c)
			}
			continue
		}
		if len(rec.Scenarios) != 1 {
			t.Fatalf("crash %d: recovered %d scenarios", c, len(rec.Scenarios))
		}
		got := rec.Scenarios[0].State
		if !registered {
			t.Fatalf("crash %d: scenario recovered before registration was acked (epoch %d)", c, got.Epoch)
		}
		// With fsync on, the durable state is exactly the acknowledged
		// prefix: the in-flight record is torn away, nothing acked is lost.
		if got.Epoch != ackedEpoch {
			t.Fatalf("crash %d: recovered epoch %d, acked %d", c, got.Epoch, ackedEpoch)
		}
		want := committed[got.Epoch]
		if want == nil {
			t.Fatalf("crash %d: recovered epoch %d was never a committed state", c, got.Epoch)
		}
		stateEqual(t, fmt.Sprintf("crash %d", c), want, got)

		// Answers over the recovered state must be bit-identical to the
		// reference.  One evaluation per distinct epoch: stateEqual above
		// already proves later repeats evaluate identically.
		if answers[got.Epoch] == nil {
			answers[got.Epoch] = evalState(t, want, core.MethodOSharing)
			sameAnswers(t, fmt.Sprintf("crash %d answers", c), answers[got.Epoch], evalState(t, got, core.MethodOSharing))
		}
	}
	if answers[finalEpoch] == nil {
		t.Fatal("the crash sweep never reached the final committed state")
	}
}
