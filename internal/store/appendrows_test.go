package store

import (
	"errors"
	"testing"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
)

// TestAppendRowsBatchRoundTrip pins the batched-append record: a batch is one
// WAL record and exactly one fsync however many rows it carries, it commits as
// a single epoch step, and recovery replays it bit-identically — including
// mixed with single appends and a bump.
func TestAppendRowsBatchRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st := openTestStore(t, fs)
	cur := testState(6)
	log, err := st.Register(cloneState(cur))
	if err != nil {
		t.Fatal(err)
	}

	syncs := 0
	fs.SyncErr = func(path string) error { syncs++; return nil }
	batch := []engine.Tuple{sRow("batch-α", 2, 1), sRow("batch-two", 5, 2), sRow("", 0, 2), sRow("batch-four", 2, 2)}
	recordsBefore := log.Records()
	if err := log.AppendRows("S", batch, cur.Epoch+1); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("batched append issued %d fsyncs, want 1", syncs)
	}
	if got := log.Records() - recordsBefore; got != 1 {
		t.Fatalf("batched append wrote %d WAL records, want 1", got)
	}
	fs.SyncErr = nil
	cur.Relations[0].Rows = append(cur.Relations[0].Rows, batch...)
	cur.Epoch++

	// A single append and a bump after the batch keep the epoch chain intact.
	if err := log.AppendRow("S", sRow("single", 1, 1), cur.Epoch+1); err != nil {
		t.Fatal(err)
	}
	cur.Relations[0].Rows = append(cur.Relations[0].Rows, sRow("single", 1, 1))
	cur.Epoch++
	if err := log.Bump(cur.Epoch+1, cur.Epoch+1); err != nil {
		t.Fatal(err)
	}
	cur.Epoch++
	cur.StaleFloor = cur.Epoch

	rec, err := openTestStore(t, fs).Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Scenarios) != 1 || len(rec.Quarantined) != 0 {
		t.Fatalf("recovered %d scenarios, %d quarantined", len(rec.Scenarios), len(rec.Quarantined))
	}
	got := rec.Scenarios[0]
	stateEqual(t, "recovered", cur, got.State)
	if got.Replayed != 3 {
		t.Fatalf("replayed %d records, want 3 (batch, append, bump)", got.Replayed)
	}
	for _, m := range []core.Method{core.MethodBasic, core.MethodOSharing} {
		sameAnswers(t, m.String(), evalState(t, cur, m), evalState(t, got.State, m))
	}
}

// TestAppendRowsValidation pins the decode-side safety: a batch row with the
// wrong arity, or a batch at a non-successor epoch, quarantines the scenario
// instead of replaying a malformed state.
func TestAppendRowsValidation(t *testing.T) {
	t.Run("arity", func(t *testing.T) {
		fs := NewMemFS()
		st := openTestStore(t, fs)
		cur := testState(3)
		log, err := st.Register(cloneState(cur))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendRows("S", []engine.Tuple{sRow("ok", 1, 1), {engine.I(1)}}, cur.Epoch+1); err != nil {
			t.Fatal(err)
		}
		rec, err := openTestStore(t, fs).Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Quarantined) != 1 {
			t.Fatalf("recovered %d quarantined, want 1 (arity mismatch inside a batch)", len(rec.Quarantined))
		}
		if !errors.Is(rec.Quarantined[0].Err, ErrCorrupt) {
			t.Fatalf("quarantine reason = %v, want ErrCorrupt", rec.Quarantined[0].Err)
		}
	})
	t.Run("epoch-jump", func(t *testing.T) {
		fs := NewMemFS()
		st := openTestStore(t, fs)
		cur := testState(3)
		log, err := st.Register(cloneState(cur))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendRows("S", []engine.Tuple{sRow("skip", 1, 1)}, cur.Epoch+5); err != nil {
			t.Fatal(err)
		}
		rec, err := openTestStore(t, fs).Recover()
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Quarantined) != 1 {
			t.Fatalf("recovered %d quarantined, want 1 (epoch jump)", len(rec.Quarantined))
		}
	})
}
