package delta

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
)

// fakeScenario is the minimal Scenario: an instance guarded by the same
// RWMutex discipline the serving layer uses (appends exclusive, views shared).
type fakeScenario struct {
	name  string
	mu    sync.RWMutex
	db    *engine.Instance
	epoch uint64
	floor uint64
}

func (s *fakeScenario) Name() string { return s.name }

func (s *fakeScenario) StaleFloor() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.floor
}

func (s *fakeScenario) View(f func(db *engine.Instance, epoch uint64) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return f(s.db, s.epoch)
}

func (s *fakeScenario) append(rel string, row engine.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.db.Relation(rel).MustAppend(row)
	s.epoch++
}

func (s *fakeScenario) bump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.floor = s.epoch
}

// newFixture builds a two-mapping scenario (the S/T fixture shared with the
// store and server tests) and a delta state for its canonical query.
func newFixture(t *testing.T, name string) (*fakeScenario, schema.MappingSet, *query.Query, *core.DeltaState) {
	t.Helper()
	target := schema.NewSchema("Target")
	target.MustAddRelation(&schema.RelationSchema{Name: "T", Columns: []schema.Column{
		{Name: "a"}, {Name: "b", Type: schema.TypeInt},
	}})
	sAttr := func(n string) schema.Attribute { return schema.Attribute{Relation: "S", Name: n} }
	tAttr := func(n string) schema.Attribute { return schema.Attribute{Relation: "T", Name: n} }
	maps := schema.MappingSet{
		schema.MustNewMapping("m1", []schema.Correspondence{
			{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
			{Source: sAttr("y"), Target: tAttr("b"), Score: 0.8},
		}, 0.6),
		schema.MustNewMapping("m2", []schema.Correspondence{
			{Source: sAttr("x"), Target: tAttr("a"), Score: 0.9},
			{Source: sAttr("z"), Target: tAttr("b"), Score: 0.7},
		}, 0.4),
	}
	db := engine.NewInstance(name)
	rel := engine.NewRelation("S", []string{"x", "y", "z"})
	for i := 0; i < 8; i++ {
		rel.MustAppend(sRow(fmt.Sprintf("k%d", i%3), int64(i%4), int64(i%3)))
	}
	db.AddRelation(rel)
	sc := &fakeScenario{name: name, db: db, epoch: 1}

	q, err := query.Parse("q", target, "SELECT a FROM T WHERE b = 2")
	if err != nil {
		t.Fatal(err)
	}
	prep, err := core.NewEvaluator(db, maps).Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	ec := exec.NewContext(context.Background(), 1)
	dp, err := core.PrepareDelta(prep, ec, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatal(err)
	}
	st, err := dp.EvaluateFull(ec, db)
	if err != nil {
		t.Fatal(err)
	}
	return sc, maps, q, st
}

func sRow(x string, y, z int64) engine.Tuple {
	return engine.Tuple{engine.S(x), engine.I(y), engine.I(z)}
}

type published struct {
	scenario, query string
	epoch           uint64
	res             *core.Result
}

// collector accumulates publishes under a lock (the background loop runs on
// its own goroutine).
type collector struct {
	mu   sync.Mutex
	pubs []published
}

func (c *collector) publish(scenario, query string, method core.Method, strategy core.Strategy, res *core.Result, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pubs = append(c.pubs, published{scenario: scenario, query: query, epoch: epoch, res: res})
}

func (c *collector) snapshot() []published {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]published(nil), c.pubs...)
}

func requireSameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("%s: %d answers, want %d", label, len(got.Answers), len(want.Answers))
	}
	for i := range want.Answers {
		w, g := want.Answers[i], got.Answers[i]
		if !w.Tuple.EqualKey(g.Tuple) || math.Float64bits(w.Prob) != math.Float64bits(g.Prob) {
			t.Fatalf("%s: answer %d = %v@%v, want %v@%v", label, i, g.Tuple, g.Prob, w.Tuple, w.Prob)
		}
	}
	if math.Float64bits(want.EmptyProb) != math.Float64bits(got.EmptyProb) {
		t.Fatalf("%s: empty prob %v, want %v", label, got.EmptyProb, want.EmptyProb)
	}
}

// TestConvergePublishesAtNewEpoch: a converge over an unchanged scenario
// publishes nothing; after appends, one pass publishes once at the viewed
// epoch with the cold answer's bits.
func TestConvergePublishesAtNewEpoch(t *testing.T) {
	sc, maps, q, st := newFixture(t, "s1")
	col := &collector{}
	m := New(Config{Publish: col.publish})
	if !m.Enroll(sc, "q", core.MethodEBasic, core.StrategySEF, st, sc.epoch) {
		t.Fatal("enroll refused")
	}
	if n := m.Converge("s1"); n != 0 {
		t.Fatalf("idle converge published %d, want 0", n)
	}

	sc.append("S", sRow("fresh", 2, 2))
	sc.append("S", sRow("fresh2", 2, 0))
	if n := m.Converge("s1"); n != 1 {
		t.Fatalf("converge published %d, want 1", n)
	}
	pubs := col.snapshot()
	if len(pubs) != 1 || pubs[0].epoch != 3 || pubs[0].scenario != "s1" || pubs[0].query != "q" {
		t.Fatalf("published %+v, want one publish for s1/q at epoch 3", pubs)
	}
	cold, err := core.NewEvaluator(sc.db, maps).Evaluate(q, core.Options{Method: core.MethodEBasic})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "published", cold, pubs[0].res)
	// Converging again with no new appends republishes nothing.
	if n := m.Converge("s1"); n != 0 {
		t.Fatalf("second converge published %d, want 0", n)
	}
	if m.Applied() != 1 {
		t.Fatalf("applied = %d, want 1", m.Applied())
	}
}

// TestBackgroundLoopCoalesces: a burst of MarkDirty calls while the loop runs
// converges to the final state — the answer published last matches a cold
// evaluation over everything appended.
func TestBackgroundLoopCoalesces(t *testing.T) {
	sc, maps, q, st := newFixture(t, "s2")
	col := &collector{}
	m := New(Config{Publish: col.publish})
	m.Start()
	defer m.Stop()
	if !m.Enroll(sc, "q", core.MethodEBasic, core.StrategySEF, st, sc.epoch) {
		t.Fatal("enroll refused")
	}
	for i := 0; i < 30; i++ {
		sc.append("S", sRow(fmt.Sprintf("burst%d", i), int64(i%4), 2))
		m.MarkDirty("s2")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		pubs := col.snapshot()
		if len(pubs) > 0 && pubs[len(pubs)-1].epoch == 31 {
			cold, err := core.NewEvaluator(sc.db, maps).Evaluate(q, core.Options{Method: core.MethodEBasic})
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, "converged", cold, pubs[len(pubs)-1].res)
			if len(pubs) > 30 {
				t.Fatalf("%d publishes for 30 appends: no coalescing at all", len(pubs))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("loop never converged to epoch 31; publishes: %+v", pubs)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBumpPurges: a bump between enrollment and convergence must suppress the
// publish and purge the scenario — a bumped epoch's answers may only come from
// fresh evaluation.
func TestBumpPurges(t *testing.T) {
	sc, _, _, st := newFixture(t, "s3")
	col := &collector{}
	m := New(Config{Publish: col.publish})
	if !m.Enroll(sc, "q", core.MethodEBasic, core.StrategySEF, st, sc.epoch) {
		t.Fatal("enroll refused")
	}
	sc.append("S", sRow("pre-bump", 2, 2))
	sc.bump()
	if n := m.Converge("s3"); n != 0 {
		t.Fatalf("converge after bump published %d, want 0", n)
	}
	if got := col.snapshot(); len(got) != 0 {
		t.Fatalf("published %+v after a bump, want nothing", got)
	}
	if m.Entries("s3") != 0 {
		t.Fatalf("scenario still enrolled after bump purge")
	}
}

// TestEnrollCap: the per-scenario cap refuses new entries but keeps replacing
// existing ones.
func TestEnrollCap(t *testing.T) {
	sc, _, _, st := newFixture(t, "s4")
	m := New(Config{MaxEntries: 2, Publish: func(string, string, core.Method, core.Strategy, *core.Result, uint64) {}})
	if !m.Enroll(sc, "q1", core.MethodEBasic, core.StrategySEF, st, 1) {
		t.Fatal("first enroll refused")
	}
	if !m.Enroll(sc, "q2", core.MethodBasic, core.StrategySEF, st, 1) {
		t.Fatal("second enroll refused")
	}
	if m.Enroll(sc, "q3", core.MethodEBasic, core.StrategySEF, st, 1) {
		t.Fatal("third enroll accepted past the cap")
	}
	if !m.Enroll(sc, "q1", core.MethodEBasic, core.StrategySEF, st, 2) {
		t.Fatal("re-enroll of an existing key refused")
	}
	if m.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected())
	}
	if m.Entries("s4") != 2 {
		t.Fatalf("entries = %d, want 2", m.Entries("s4"))
	}
}

// TestFailedDeltaDropsEntry: a state whose relations shrank (something other
// than an append) is dropped, not published.
func TestFailedDeltaDropsEntry(t *testing.T) {
	sc, _, _, st := newFixture(t, "s5")
	m := New(Config{Publish: func(string, string, core.Method, core.Strategy, *core.Result, uint64) {}})
	if !m.Enroll(sc, "q", core.MethodEBasic, core.StrategySEF, st, sc.epoch) {
		t.Fatal("enroll refused")
	}
	sc.mu.Lock()
	rel := sc.db.Relation("S")
	rel.Rows = rel.Rows[:len(rel.Rows)-1]
	sc.epoch++
	sc.mu.Unlock()
	if n := m.Converge("s5"); n != 0 {
		t.Fatalf("converge over shrunk relation published %d, want 0", n)
	}
	if m.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", m.Dropped())
	}
	if m.Entries("s5") != 0 {
		t.Fatalf("entry survived a failed delta")
	}
}
