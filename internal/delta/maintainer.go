// Package delta is the incremental-maintenance reconciler: a converge-after-
// change queue that keeps cached answer distributions current under appends
// instead of invalidating them.  The serving layer enrolls a (scenario, query,
// method, strategy) entry after a successful delta-maintainable evaluation;
// every append marks the scenario dirty; a single maintenance goroutine
// coalesces bursts of marks into one delta pass per enrolled entry (the delta
// evaluation in internal/core/delta.go) and publishes each refreshed answer
// through a callback.  A Bump or Drop purges the scenario's entries — those
// events mean "something the delta cannot describe happened", and the fallback
// is the old epoch-invalidation behavior.
package delta

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/exec"
)

// Scenario is the slice of the serving layer's scenario the maintainer needs:
// an identity, the stale floor (to refuse publishing across a concurrent
// Bump), and a read-locked view of the instance.  View must hold whatever lock
// excludes appends for the duration of f, and pass the epoch the instance
// state corresponds to.
type Scenario interface {
	Name() string
	StaleFloor() uint64
	View(f func(db *engine.Instance, epoch uint64) error) error
}

// PublishFunc receives one refreshed answer: the scenario and entry identity,
// the re-aggregated result, and the epoch whose cache key it belongs under.
type PublishFunc func(scenario, query string, method core.Method, strategy core.Strategy, res *core.Result, epoch uint64)

// Config tunes a Maintainer.
type Config struct {
	// MaxEntries caps enrolled entries per scenario; Enroll refuses past it
	// (the entry's answers then age out by epoch invalidation, exactly as if
	// it had never been maintainable).  0 means the default (256).
	MaxEntries int
	// Parallelism is the worker parallelism of each delta pass.
	Parallelism int
	// Publish is called for every refreshed entry.  Required.
	Publish PublishFunc
}

const defaultMaxEntries = 256

// entryKey identifies one maintained answer within a scenario.
type entryKey struct {
	query    string
	method   core.Method
	strategy core.Strategy
}

// entry is one enrolled (query, method, strategy) with its maintained state.
// publishedEpoch is the epoch whose cache already holds this entry's current
// answer, so convergence republishes only when the epoch moved.
type entry struct {
	key            entryKey
	state          *core.DeltaState
	publishedEpoch uint64
}

// scenState is one scenario's enrollment table.  convergeMu serializes
// convergence passes per scenario — DeltaState is not safe for concurrent
// use, and the background loop and a synchronous Converge caller must not
// apply deltas to the same entries at once.
type scenState struct {
	sc         Scenario
	convergeMu sync.Mutex
	entries    map[entryKey]*entry
}

// Maintainer is the reconciler.  One background goroutine drains a dirty set
// of scenario names; marks arriving while a scenario converges simply leave it
// dirty again, so a burst of appends coalesces into however few passes the
// loop gets around to — each pass folds in everything appended so far.
type Maintainer struct {
	cfg Config

	mu    sync.Mutex
	scens map[string]*scenState
	dirty map[string]bool

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
	once sync.Once

	applied  atomic.Int64 // entries republished after a delta pass
	dropped  atomic.Int64 // entries dropped because ApplyDelta failed
	rejected atomic.Int64 // enrollments refused by the per-scenario cap
}

// New creates a stopped maintainer; call Start to begin background
// convergence (tests may drive Converge directly instead).
func New(cfg Config) *Maintainer {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = defaultMaxEntries
	}
	return &Maintainer{
		cfg:   cfg,
		scens: make(map[string]*scenState),
		dirty: make(map[string]bool),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the background convergence goroutine.
func (m *Maintainer) Start() {
	go m.loop()
}

// Stop halts background convergence and waits for the in-flight pass (if any)
// to finish.  Idempotent.
func (m *Maintainer) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

func (m *Maintainer) loop() {
	defer close(m.done)
	for {
		select {
		case <-m.stop:
			return
		case <-m.wake:
		}
		for {
			select {
			case <-m.stop:
				return
			default:
			}
			name, ok := m.takeDirty()
			if !ok {
				break
			}
			m.Converge(name)
		}
	}
}

// takeDirty pops one dirty scenario name, if any.
func (m *Maintainer) takeDirty() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name := range m.dirty {
		delete(m.dirty, name)
		return name, true
	}
	return "", false
}

// Enroll registers one maintained entry: the state of a just-completed full
// evaluation, already published under publishedEpoch by the normal cache
// path.  It reports false when the per-scenario cap refuses the entry.
// Re-enrolling an existing key replaces its state.
func (m *Maintainer) Enroll(sc Scenario, query string, method core.Method, strategy core.Strategy, st *core.DeltaState, publishedEpoch uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss := m.scens[sc.Name()]
	if ss == nil {
		ss = &scenState{sc: sc, entries: make(map[entryKey]*entry)}
		m.scens[sc.Name()] = ss
	}
	k := entryKey{query: query, method: method, strategy: strategy}
	if _, ok := ss.entries[k]; !ok && len(ss.entries) >= m.cfg.MaxEntries {
		m.rejected.Add(1)
		return false
	}
	ss.entries[k] = &entry{key: k, state: st, publishedEpoch: publishedEpoch}
	return true
}

// MarkDirty queues the scenario for convergence.  Cheap and non-blocking;
// every append calls it.
func (m *Maintainer) MarkDirty(name string) {
	m.mu.Lock()
	known := m.scens[name] != nil
	if known {
		m.dirty[name] = true
	}
	m.mu.Unlock()
	if !known {
		return
	}
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Purge drops every entry of the scenario — called on Bump (the delta cannot
// describe what changed) and Drop (nothing left to maintain).
func (m *Maintainer) Purge(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.scens, name)
	delete(m.dirty, name)
}

// Entries returns the number of enrolled entries for the scenario.
func (m *Maintainer) Entries(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ss := m.scens[name]; ss != nil {
		return len(ss.entries)
	}
	return 0
}

// Applied returns the count of entries republished after a delta pass.
func (m *Maintainer) Applied() int64 { return m.applied.Load() }

// Dropped returns the count of entries dropped because their delta failed.
func (m *Maintainer) Dropped() int64 { return m.dropped.Load() }

// Rejected returns the count of enrollments refused by the cap.
func (m *Maintainer) Rejected() int64 { return m.rejected.Load() }

// Converge runs one delta pass for every entry of the scenario, publishing
// each refreshed answer at the viewed epoch.  It is the synchronous form of
// what the background loop does and returns the number of entries published.
//
// The whole pass runs under the scenario's read lock (View), so appends are
// excluded and the instance, the viewed epoch, and the states' covered
// lengths stay mutually consistent.  A Bump is NOT excluded — it only touches
// epoch metadata — so before publishing, the stale floor is checked against
// the viewed epoch: a concurrent Bump raises the floor to an epoch above the
// view, the publish is skipped and the scenario purged (requeue-on-conflict).
func (m *Maintainer) Converge(name string) int {
	m.mu.Lock()
	ss := m.scens[name]
	m.mu.Unlock()
	if ss == nil {
		return 0
	}
	ss.convergeMu.Lock()
	defer ss.convergeMu.Unlock()
	m.mu.Lock()
	sc := ss.sc
	entries := make([]*entry, 0, len(ss.entries))
	for _, e := range ss.entries {
		entries = append(entries, e)
	}
	m.mu.Unlock()

	published := 0
	_ = sc.View(func(db *engine.Instance, epoch uint64) error {
		ec := exec.NewContext(context.Background(), m.cfg.Parallelism)
		for _, e := range entries {
			if _, err := e.state.ApplyDelta(ec, db); err != nil {
				m.dropEntry(name, e.key)
				m.dropped.Add(1)
				continue
			}
			if e.publishedEpoch == epoch {
				continue // nothing new since the last publish
			}
			if sc.StaleFloor() >= epoch {
				// A Bump raced this pass: the viewed epoch is already below
				// the stale floor, so its answers must never be served fresh.
				m.Purge(name)
				return nil
			}
			res := e.state.Result()
			m.cfg.Publish(name, e.key.query, e.key.method, e.key.strategy, res, epoch)
			e.publishedEpoch = epoch
			m.applied.Add(1)
			published++
		}
		return nil
	})
	return published
}

// dropEntry removes one entry, leaving the rest of the scenario enrolled.
func (m *Maintainer) dropEntry(name string, k entryKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ss := m.scens[name]; ss != nil {
		delete(ss.entries, k)
		if len(ss.entries) == 0 {
			delete(m.scens, name)
		}
	}
}
