module github.com/probdb/urm

go 1.22
