package urm

import (
	"context"
	"fmt"
	"sync"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/server"
	"github.com/probdb/urm/internal/shard"
)

// Typed sentinel errors of the public API.  Errors returned by sessions,
// prepared queries and the query service wrap them, so callers classify
// failures with errors.Is instead of matching message strings:
//
//	ErrBadQuery        the query text does not parse or validate
//	ErrBadOptions      an option value no evaluation can honour
//	ErrUnknownScenario  the service request names an unregistered scenario
//	ErrOverloaded       the service shed the request (rate limit or no slot)
//	ErrDeadlineTooShort the request's deadline cannot cover the expected
//	                    evaluation latency, so the service shed it early
var (
	ErrBadQuery         = query.ErrBadQuery
	ErrBadOptions       = core.ErrBadOptions
	ErrUnknownScenario  = server.ErrUnknownScenario
	ErrOverloaded       = server.ErrOverloaded
	ErrDeadlineTooShort = server.ErrDeadlineTooShort
)

// Rows is a cursor over the answers of one evaluation, in canonical order
// (descending probability, ties broken by tuple key).  It follows the
// database/sql Rows contract — Next/Answer/Err/Close — and never materializes
// the full answer slice; see PreparedQuery.Stream.
type Rows = core.Cursor

// Option tunes one evaluation (or sets a session's defaults) — the functional
// alternative to filling an Options struct by hand:
//
//	prepared.Execute(ctx, urm.WithMethod(urm.QSharing), urm.WithParallelism(8))
//
// Options are applied in order; later options override earlier ones.  Invalid
// values (negative parallelism, k < 1, unknown method or strategy) surface as
// errors wrapping ErrBadOptions when the evaluation starts.
type Option func(*evalSettings) error

// evalSettings is the resolved option set of one evaluation.
type evalSettings struct {
	opts  core.Options
	topK  int
	shard *shard.Spec
}

// WithMethod selects the evaluation algorithm (default OSharing — the
// session-level default differs from the zero Options value, whose method is
// Basic, because o-sharing is the paper's headline algorithm).
func WithMethod(m Method) Option {
	return func(s *evalSettings) error { s.opts.Method = m; return nil }
}

// WithStrategy selects the o-sharing operator-selection strategy (default SEF).
func WithStrategy(st Strategy) Option {
	return func(s *evalSettings) error { s.opts.Strategy = st; return nil }
}

// WithParallelism bounds the evaluation runtime's worker goroutines:
// 0 selects GOMAXPROCS, 1 forces sequential execution.  Answers are identical
// at every setting.
func WithParallelism(n int) Option {
	return func(s *evalSettings) error { s.opts.Parallelism = n; return nil }
}

// WithTopK runs the probabilistic top-k algorithm of Section VII instead of a
// full evaluation, returning the k answers with the highest probabilities
// (with lower-bound probabilities).  k must be at least 1.
func WithTopK(k int) Option {
	return func(s *evalSettings) error {
		if k < 1 {
			return fmt.Errorf("%w: WithTopK requires k >= 1, got %d", ErrBadOptions, k)
		}
		s.topK = k
		return nil
	}
}

// WithRandomSeed seeds the Random o-sharing strategy so runs are reproducible.
func WithRandomSeed(seed int64) Option {
	return func(s *evalSettings) error { s.opts.RandomSeed = seed; return nil }
}

// WithShards partitions evaluation over spec.Shards in-process shards: the
// named relation is split by the spec's partitioner, every other relation is
// replicated, and per-shard answer streams are merged back into the canonical
// distribution.  Answers are bit-identical to unsharded evaluation at every
// shard count.  Methods and plans whose evaluation cannot distribute
// (o-sharing, top-k, self-joins or aggregates of the partitioned relation)
// transparently fall back to unsharded evaluation — the session holds the
// full instance, so falling back is always sound.
func WithShards(spec ShardSpec) Option {
	return func(s *evalSettings) error {
		if spec.Shards < 1 {
			return fmt.Errorf("%w: WithShards requires at least 1 shard, got %d", ErrBadOptions, spec.Shards)
		}
		sp := spec
		s.shard = &sp
		return nil
	}
}

// apply folds the options over the settings.
func (s evalSettings) apply(opts []Option) (evalSettings, error) {
	for _, o := range opts {
		if err := o(&s); err != nil {
			return s, err
		}
	}
	return s, nil
}

// Session is the long-lived face of the library: it binds a target schema, a
// source instance and a possible-mapping set, owns the prepared-query cache
// (the instance carries the shared base-relation index cache), and evaluates
// queries against them.  Where the free Evaluate functions re-parse,
// re-reformulate through every mapping and re-compile plans on each call, a
// session pays that front half once per distinct query:
//
//	sess, _ := urm.NewSession(target, db, matching.Mappings)
//	pq, _ := sess.Prepare("SELECT addr FROM Person WHERE phone = '123'")
//	for _, opts := range workloads {
//	    res, _ := pq.Execute(ctx, opts...)   // plans compiled exactly once
//	    ...
//	}
//
// Sessions are safe for concurrent use.  Session evaluations always read the
// instance's current rows (plans reference relations by name); replacing the
// mapping set or the schemas requires a new session.
type Session struct {
	target   *Schema
	db       *Instance
	maps     MappingSet
	defaults evalSettings

	mu         sync.Mutex
	prepared   map[string]*PreparedQuery   // canonical fingerprint -> prepared query
	shardEvals map[string]*shard.Evaluator // spec string -> sharded evaluator (partition slices cached)
}

// NewSession builds a session over the target schema (queries are parsed
// against it), the source instance and the possible mappings.  The options
// become the session's defaults; per-call options override them.
func NewSession(target *Schema, db *Instance, maps MappingSet, defaults ...Option) (*Session, error) {
	if target == nil {
		return nil, fmt.Errorf("urm: new session: nil target schema")
	}
	if db == nil {
		return nil, fmt.Errorf("urm: new session: nil instance")
	}
	if len(maps) == 0 {
		return nil, fmt.Errorf("urm: new session: empty mapping set")
	}
	if err := maps.Validate(); err != nil {
		return nil, fmt.Errorf("urm: new session: invalid mapping set: %w", err)
	}
	base := evalSettings{opts: core.Options{Method: core.MethodOSharing}}
	settings, err := base.apply(defaults)
	if err != nil {
		return nil, err
	}
	if err := settings.opts.Validate(); err != nil {
		return nil, err
	}
	return &Session{
		target:   target,
		db:       db,
		maps:     maps,
		defaults: settings,
		prepared: make(map[string]*PreparedQuery),
	}, nil
}

// NewSession builds a session over the scenario's target schema, instance and
// mappings — the session-API successor of Scenario.Evaluator.
func (s *Scenario) NewSession(defaults ...Option) (*Session, error) {
	return NewSession(s.TargetSchema, s.DB, s.Matching.Mappings, defaults...)
}

// Target returns the target schema queries are parsed against.
func (s *Session) Target() *Schema { return s.target }

// DB returns the session's source instance.
func (s *Session) DB() *Instance { return s.db }

// Mappings returns the session's possible-mapping set.
func (s *Session) Mappings() MappingSet { return s.maps }

// Prepare parses the query text against the session's target schema and
// returns its prepared form: reformulation through every mapping, plan
// optimization and compilation happen once (lazily, per method, on first
// execution) and are reused by every Execute/Stream.  Queries with the same
// canonical SQL share one prepared entry, so preparing the same text twice is
// free.  Parse and validation failures wrap ErrBadQuery.
func (s *Session) Prepare(text string) (*PreparedQuery, error) {
	q, err := query.Parse("q", s.target, text)
	if err != nil {
		return nil, err
	}
	return s.PrepareQuery(q)
}

// preparedCacheCap bounds the session's prepared-query cache.  Past the cap
// the cache is flushed wholesale (re-preparing costs milliseconds), so a
// long-lived session fed unbounded ad-hoc texts cannot grow without bound;
// handed-out *PreparedQuery values stay valid either way.
const preparedCacheCap = 1024

// PrepareQuery is Prepare for an already-parsed query (one built with
// ParseQuery or Scenario.WorkloadQuery).
func (s *Session) PrepareQuery(q *Query) (*PreparedQuery, error) {
	if q == nil {
		return nil, fmt.Errorf("%w: nil query", ErrBadQuery)
	}
	key := q.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if pq, ok := s.prepared[key]; ok {
		return pq, nil
	}
	prep, err := core.NewEvaluator(s.db, s.maps).Prepare(q)
	if err != nil {
		return nil, err
	}
	if len(s.prepared) >= preparedCacheCap {
		s.prepared = make(map[string]*PreparedQuery)
	}
	pq := &PreparedQuery{session: s, q: q, canonical: key, prep: prep}
	s.prepared[key] = pq
	return pq, nil
}

// Execute is the one-shot convenience: Prepare (or reuse the cached prepared
// form) and Execute in one call.
func (s *Session) Execute(ctx context.Context, text string, opts ...Option) (*Result, error) {
	pq, err := s.Prepare(text)
	if err != nil {
		return nil, err
	}
	return pq.Execute(ctx, opts...)
}

// Stream is the one-shot streaming convenience: Prepare (or reuse) and Stream
// in one call.
func (s *Session) Stream(ctx context.Context, text string, opts ...Option) (*Rows, error) {
	pq, err := s.Prepare(text)
	if err != nil {
		return nil, err
	}
	return pq.Stream(ctx, opts...)
}

// PreparedQuery is a query whose front half — parsing, reformulation through
// every possible mapping, plan optimization and compilation — is computed
// once; Execute and Stream run it any number of times, under any options,
// paying only execution and aggregation.  Results are bit-identical to the
// equivalent one-shot Evaluate call.  A PreparedQuery is safe for concurrent
// use and always reads the instance's current rows.
type PreparedQuery struct {
	session   *Session
	q         *Query
	canonical string
	prep      *core.Prepared
}

// Query returns the parsed target query.
func (p *PreparedQuery) Query() *Query { return p.q }

// Text returns the canonical SQL of the prepared query — the form under which
// it is cached and shared.
func (p *PreparedQuery) Text() string { return p.canonical }

// settings resolves the per-call options over the session defaults.
func (p *PreparedQuery) settings(opts []Option) (evalSettings, error) {
	return p.session.defaults.apply(opts)
}

// Execute runs the prepared query and returns the materialized result.  With
// WithTopK it runs the probabilistic top-k algorithm instead.
func (p *PreparedQuery) Execute(ctx context.Context, opts ...Option) (*Result, error) {
	cfg, err := p.settings(opts)
	if err != nil {
		return nil, err
	}
	if cfg.shard != nil {
		ev, err := p.session.shardEvaluator(*cfg.shard)
		if err != nil {
			return nil, err
		}
		if cfg.topK > 0 {
			return ev.ExecuteTopK(ctx, p.prep, cfg.topK, cfg.opts)
		}
		return ev.Execute(ctx, p.prep, cfg.opts)
	}
	if cfg.topK > 0 {
		return p.prep.ExecuteTopKContext(ctx, cfg.topK, cfg.opts)
	}
	return p.prep.ExecuteContext(ctx, cfg.opts)
}

// shardEvaluator returns the session's sharded evaluator for the spec,
// building (and caching) it on first use so repeated sharded executions reuse
// the partition slices.
func (s *Session) shardEvaluator(spec shard.Spec) (*shard.Evaluator, error) {
	key := spec.String()
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev, ok := s.shardEvals[key]; ok {
		return ev, nil
	}
	ev, err := shard.NewEvaluator(s.db, spec)
	if err != nil {
		return nil, err
	}
	if s.shardEvals == nil {
		s.shardEvals = make(map[string]*shard.Evaluator)
	}
	s.shardEvals[key] = ev
	return ev, nil
}

// Stream runs the prepared query and returns a Rows cursor over its answers
// in canonical order.  The evaluation completes before Stream returns — the
// canonical order exists only after every mapping's contribution is merged —
// but the answer slice is never materialized: each Answer is produced as the
// cursor advances, so serializing or early-exiting callers never hold the
// full result.  Streamed answers are bit-identical, in the same order, to
// Execute's.
func (p *PreparedQuery) Stream(ctx context.Context, opts ...Option) (*Rows, error) {
	cfg, err := p.settings(opts)
	if err != nil {
		return nil, err
	}
	if cfg.shard != nil {
		return nil, fmt.Errorf("%w: WithShards does not combine with Stream; sharded merge materializes the distribution, use Execute", ErrBadOptions)
	}
	if cfg.topK > 0 {
		return p.prep.StreamTopKContext(ctx, cfg.topK, cfg.opts)
	}
	return p.prep.StreamContext(ctx, cfg.opts)
}

// Partitions reports how the mapping set partitions for this query: the
// number of distinct source queries q-sharing and o-sharing share work
// across.  It is a cheap introspection helper for capacity planning.
func (p *PreparedQuery) Partitions() (int, error) {
	parts, err := core.PartitionMappings(p.q, p.session.maps)
	if err != nil {
		return 0, err
	}
	return len(parts), nil
}
