// Command urm-query evaluates probabilistic queries over the synthetic
// purchase-order scenario.  It is an interactive face for the library: pick a
// target schema, an evaluation method and a query (ad-hoc SQL or one of the
// paper's Table III workload queries) and inspect the probabilistic answers.
//
// Usage:
//
//	urm-query -workload 1
//	urm-query -target Noris -method q-sharing -workload 6
//	urm-query -query "SELECT orderNum FROM PO WHERE telephone = '335-1736'"
//	urm-query -workload 4 -topk 5
//	urm-query -workload 2 -method basic -parallel 8
//	urm-query -workload 1 -repeat 5           # prepared once, executed 5 times
//
// With -repeat the query is prepared once through the session API —
// reformulation and plan compilation happen on the first run only — so later
// runs show the prepared-execution speedup.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	urm "github.com/probdb/urm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-query:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-query", flag.ContinueOnError)
	var (
		target   = fs.String("target", "Excel", "target schema: Excel, Noris or Paragon")
		mappings = fs.Int("mappings", 100, "number of possible mappings h")
		sizeMB   = fs.Float64("size", 40, "source instance scale in MB")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		method   = fs.String("method", "o-sharing", "evaluation method: basic, e-basic, e-mqo, q-sharing, o-sharing")
		strategy = fs.String("strategy", "SEF", "o-sharing operator selection strategy: SEF, SNF, Random")
		workload = fs.Int("workload", 0, "run the paper's workload query Q<n> (1-10)")
		text     = fs.String("query", "", "ad-hoc query in the library's SQL subset")
		topk     = fs.Int("topk", 0, "if positive, run the probabilistic top-k algorithm with this k")
		parallel = fs.Int("parallel", 0, "evaluation worker goroutines (0 = all cores, 1 = sequential)")
		repeat   = fs.Int("repeat", 1, "execute the query this many times; the query is prepared once, so repeats skip reformulation and plan compilation")
		stream   = fs.Bool("stream", false, "stream answers through the Rows cursor instead of materializing the result")
		limit    = fs.Int("limit", 20, "maximum number of answers to print")
		verbose  = fs.Bool("v", false, "print evaluation statistics")
		noindex  = fs.Bool("noindex", false, "disable the shared base-relation index subsystem (A/B comparison; answers are identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}

	// Reject conflicting or nonsensical flag combinations up front, before
	// paying scenario generation.
	switch {
	case *workload == 0 && *text == "":
		return fmt.Errorf("provide -workload <1-10> or -query \"<sql>\"")
	case *workload != 0 && *text != "":
		return fmt.Errorf("-workload and -query are mutually exclusive; pass one")
	case *repeat < 1:
		return fmt.Errorf("-repeat must be >= 1, got %d", *repeat)
	case *topk < 0:
		return fmt.Errorf("-topk must be >= 0, got %d", *topk)
	case *noindex && *repeat > 1:
		return fmt.Errorf("-noindex with -repeat compares nothing: the A/B toggle is per-process, so repeats would all run unindexed; run the tool twice instead")
	}

	m, err := urm.ParseMethod(*method)
	if err != nil {
		return err
	}
	s, err := urm.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	fmt.Printf("generating %s scenario (h=%d, %gMB)...\n", *target, *mappings, *sizeMB)
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   *target,
		Mappings: *mappings,
		SizeMB:   *sizeMB,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	if *noindex {
		scenario.DB.SetIndexing(false)
	}

	sess, err := scenario.NewSession(
		urm.WithMethod(m), urm.WithStrategy(s), urm.WithParallelism(*parallel))
	if err != nil {
		return err
	}

	var q *urm.Query
	if *workload > 0 {
		q, err = scenario.WorkloadQuery(*workload)
	} else {
		q, err = scenario.Query("adhoc", *text)
	}
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("mappings: %d (o-ratio %.2f)\n\n", len(scenario.Mappings()), urm.ORatio(scenario.Mappings()))

	// Prepare once; every -repeat execution reuses the compiled front half.
	pq, err := sess.PrepareQuery(q)
	if err != nil {
		return err
	}
	var opts []urm.Option
	if *topk > 0 {
		opts = append(opts, urm.WithTopK(*topk))
	}

	ctx := context.Background()
	for run := 1; run <= *repeat; run++ {
		if *repeat > 1 {
			fmt.Printf("--- run %d/%d ---\n", run, *repeat)
		}
		if *stream {
			if err := streamResult(ctx, pq, opts, *limit, *verbose); err != nil {
				return err
			}
			continue
		}
		res, err := pq.Execute(ctx, opts...)
		if err != nil {
			return err
		}
		printResult(res, *limit, *verbose)
	}
	return nil
}

// streamResult drives the Rows cursor, printing up to limit answers as they
// arrive.
func streamResult(ctx context.Context, pq *urm.PreparedQuery, opts []urm.Option, limit int, verbose bool) error {
	start := time.Now()
	rows, err := pq.Stream(ctx, opts...)
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Printf("streaming %d answers   empty-probability: %.3f   time-to-cursor: %.3fs\n",
		rows.Len(), rows.EmptyProb(), time.Since(start).Seconds())
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Printf("columns: %v\n", cols)
	}
	n := 0
	for rows.Next() {
		n++
		if n <= limit {
			a := rows.Answer()
			fmt.Printf("  %3d. %-40s  p=%.4f\n", n, a.Tuple.String(), a.Prob)
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n > limit {
		fmt.Printf("  ... (%d more)\n", n-limit)
	}
	if verbose {
		printStats(rows.Result())
	}
	return nil
}

func printResult(res *urm.Result, limit int, verbose bool) {
	fmt.Printf("method: %s   answers: %d   empty-probability: %.3f   time: %.3fs\n",
		res.Method, len(res.Answers), res.EmptyProb, res.TotalTime.Seconds())
	if len(res.Columns) > 0 {
		fmt.Printf("columns: %v\n", res.Columns)
	}
	n := len(res.Answers)
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		a := res.Answers[i]
		fmt.Printf("  %3d. %-40s  p=%.4f\n", i+1, a.Tuple.String(), a.Prob)
	}
	if len(res.Answers) > n {
		fmt.Printf("  ... (%d more)\n", len(res.Answers)-n)
	}
	if verbose {
		printStats(res)
	}
}

func printStats(res *urm.Result) {
	fmt.Printf("\nrewritten queries: %d   executed queries: %d   partitions: %d\n",
		res.RewrittenQueries, res.ExecutedQueries, res.Partitions)
	fmt.Printf("operators: %v\n", res.Stats.Operators())
	fmt.Printf("index: %d builds, %d lookups\n", res.Stats.IndexBuilds(), res.Stats.IndexLookups())
	if b := res.Stats.Batches(); b > 0 {
		sel := "n/a"
		if in := res.Stats.SelectRowsIn(); in > 0 {
			sel = fmt.Sprintf("%.1f%%", 100*float64(res.Stats.SelectRowsOut())/float64(in))
		}
		fmt.Printf("batch engine: %d batches, avg select selectivity %s, %d partitioned builds (max %d partitions)\n",
			b, sel, res.Stats.PartitionedBuilds(), res.Stats.MaxBuildPartitions())
	}
	fmt.Printf("phases: rewrite %.3fs, execute %.3fs, aggregate %.3fs\n",
		res.RewriteTime.Seconds(), res.ExecTime.Seconds(), res.AggregateTime.Seconds())
}
