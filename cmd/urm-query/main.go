// Command urm-query evaluates probabilistic queries over the synthetic
// purchase-order scenario.  It is an interactive face for the library: pick a
// target schema, an evaluation method and a query (ad-hoc SQL or one of the
// paper's Table III workload queries) and inspect the probabilistic answers.
//
// Usage:
//
//	urm-query -workload 1
//	urm-query -target Noris -method q-sharing -workload 6
//	urm-query -query "SELECT orderNum FROM PO WHERE telephone = '335-1736'"
//	urm-query -workload 4 -topk 5
//	urm-query -workload 2 -method basic -parallel 8
//	urm-query -workload 1 -repeat 5           # prepared once, executed 5 times
//
// With -repeat the query is prepared once through the session API —
// reformulation and plan compilation happen on the first run only — so later
// runs show the prepared-execution speedup.
//
// Remote mode queries a running urm-serve instead of evaluating locally:
//
//	urm-query -url http://localhost:8080 -scenario excel \
//	          -tenant alice -query "SELECT orderNum FROM PO WHERE telephone = '335-1736'"
//
// When the server sheds with 429, remote mode retries with jittered
// exponential backoff honoring the server's Retry-After hint (-retries caps
// the attempts).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	urm "github.com/probdb/urm"
	"github.com/probdb/urm/internal/qos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-query:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-query", flag.ContinueOnError)
	var (
		target   = fs.String("target", "Excel", "target schema: Excel, Noris or Paragon")
		mappings = fs.Int("mappings", 100, "number of possible mappings h")
		sizeMB   = fs.Float64("size", 40, "source instance scale in MB")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		method   = fs.String("method", "o-sharing", "evaluation method: basic, e-basic, e-mqo, q-sharing, o-sharing")
		strategy = fs.String("strategy", "SEF", "o-sharing operator selection strategy: SEF, SNF, Random")
		workload = fs.Int("workload", 0, "run the paper's workload query Q<n> (1-10)")
		text     = fs.String("query", "", "ad-hoc query in the library's SQL subset")
		topk     = fs.Int("topk", 0, "if positive, run the probabilistic top-k algorithm with this k")
		parallel = fs.Int("parallel", 0, "evaluation worker goroutines (0 = all cores, 1 = sequential)")
		repeat   = fs.Int("repeat", 1, "execute the query this many times; the query is prepared once, so repeats skip reformulation and plan compilation")
		stream   = fs.Bool("stream", false, "stream answers through the Rows cursor instead of materializing the result")
		limit    = fs.Int("limit", 20, "maximum number of answers to print")
		verbose  = fs.Bool("v", false, "print evaluation statistics")
		noindex  = fs.Bool("noindex", false, "disable the shared base-relation index subsystem (A/B comparison; answers are identical)")

		url      = fs.String("url", "", "query a running urm-serve at this base URL instead of evaluating locally")
		scenName = fs.String("scenario", "", "scenario name on the server (remote mode)")
		tenant   = fs.String("tenant", "", "tenant identity sent as X-URM-Tenant (remote mode)")
		priority = fs.String("priority", "", "admission class sent as X-URM-Priority: interactive or batch (remote mode)")
		retries  = fs.Int("retries", 4, "maximum attempts when the server sheds with 429; backoff honors Retry-After (remote mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}

	// Reject conflicting or nonsensical flag combinations up front, before
	// paying scenario generation.
	switch {
	case *url == "" && *workload == 0 && *text == "":
		return fmt.Errorf("provide -workload <1-10> or -query \"<sql>\"")
	case *workload != 0 && *text != "":
		return fmt.Errorf("-workload and -query are mutually exclusive; pass one")
	case *repeat < 1:
		return fmt.Errorf("-repeat must be >= 1, got %d", *repeat)
	case *topk < 0:
		return fmt.Errorf("-topk must be >= 0, got %d", *topk)
	case *noindex && *repeat > 1:
		return fmt.Errorf("-noindex with -repeat compares nothing: the A/B toggle is per-process, so repeats would all run unindexed; run the tool twice instead")
	case *url == "" && (*scenName != "" || *tenant != "" || *priority != ""):
		return fmt.Errorf("-scenario, -tenant and -priority apply to remote mode; pass -url")
	}
	if *url != "" {
		// Remote mode: the server owns evaluation, so local-evaluation knobs
		// conflict rather than silently doing nothing.
		switch {
		case *text == "":
			return fmt.Errorf("remote mode needs -query (workload queries are generated from the local scenario)")
		case *scenName == "":
			return fmt.Errorf("remote mode needs -scenario <name>")
		case *stream || *noindex || *parallel != 0:
			return fmt.Errorf("-stream, -noindex and -parallel are local-evaluation flags; the server decides them")
		case *retries < 1:
			return fmt.Errorf("-retries must be >= 1, got %d", *retries)
		}
		return runRemote(*url, *scenName, *tenant, *priority, *text, *method, *strategy, *topk, *repeat, *retries, *limit)
	}

	m, err := urm.ParseMethod(*method)
	if err != nil {
		return err
	}
	s, err := urm.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	fmt.Printf("generating %s scenario (h=%d, %gMB)...\n", *target, *mappings, *sizeMB)
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   *target,
		Mappings: *mappings,
		SizeMB:   *sizeMB,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	if *noindex {
		scenario.DB.SetIndexing(false)
	}

	sess, err := scenario.NewSession(
		urm.WithMethod(m), urm.WithStrategy(s), urm.WithParallelism(*parallel))
	if err != nil {
		return err
	}

	var q *urm.Query
	if *workload > 0 {
		q, err = scenario.WorkloadQuery(*workload)
	} else {
		q, err = scenario.Query("adhoc", *text)
	}
	if err != nil {
		return err
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("mappings: %d (o-ratio %.2f)\n\n", len(scenario.Mappings()), urm.ORatio(scenario.Mappings()))

	// Prepare once; every -repeat execution reuses the compiled front half.
	pq, err := sess.PrepareQuery(q)
	if err != nil {
		return err
	}
	var opts []urm.Option
	if *topk > 0 {
		opts = append(opts, urm.WithTopK(*topk))
	}

	ctx := context.Background()
	for run := 1; run <= *repeat; run++ {
		if *repeat > 1 {
			fmt.Printf("--- run %d/%d ---\n", run, *repeat)
		}
		if *stream {
			if err := streamResult(ctx, pq, opts, *limit, *verbose); err != nil {
				return err
			}
			continue
		}
		res, err := pq.Execute(ctx, opts...)
		if err != nil {
			return err
		}
		printResult(res, *limit, *verbose)
	}
	return nil
}

// streamResult drives the Rows cursor, printing up to limit answers as they
// arrive.
func streamResult(ctx context.Context, pq *urm.PreparedQuery, opts []urm.Option, limit int, verbose bool) error {
	start := time.Now()
	rows, err := pq.Stream(ctx, opts...)
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Printf("streaming %d answers   empty-probability: %.3f   time-to-cursor: %.3fs\n",
		rows.Len(), rows.EmptyProb(), time.Since(start).Seconds())
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Printf("columns: %v\n", cols)
	}
	n := 0
	for rows.Next() {
		n++
		if n <= limit {
			a := rows.Answer()
			fmt.Printf("  %3d. %-40s  p=%.4f\n", n, a.Tuple.String(), a.Prob)
		}
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if n > limit {
		fmt.Printf("  ... (%d more)\n", n-limit)
	}
	if verbose {
		printStats(rows.Result())
	}
	return nil
}

func printResult(res *urm.Result, limit int, verbose bool) {
	fmt.Printf("method: %s   answers: %d   empty-probability: %.3f   time: %.3fs\n",
		res.Method, len(res.Answers), res.EmptyProb, res.TotalTime.Seconds())
	if len(res.Columns) > 0 {
		fmt.Printf("columns: %v\n", res.Columns)
	}
	n := len(res.Answers)
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		a := res.Answers[i]
		fmt.Printf("  %3d. %-40s  p=%.4f\n", i+1, a.Tuple.String(), a.Prob)
	}
	if len(res.Answers) > n {
		fmt.Printf("  ... (%d more)\n", len(res.Answers)-n)
	}
	if verbose {
		printStats(res)
	}
}

func printStats(res *urm.Result) {
	fmt.Printf("\nrewritten queries: %d   executed queries: %d   partitions: %d\n",
		res.RewrittenQueries, res.ExecutedQueries, res.Partitions)
	fmt.Printf("operators: %v\n", res.Stats.Operators())
	fmt.Printf("index: %d builds, %d lookups\n", res.Stats.IndexBuilds(), res.Stats.IndexLookups())
	if b := res.Stats.Batches(); b > 0 {
		sel := "n/a"
		if in := res.Stats.SelectRowsIn(); in > 0 {
			sel = fmt.Sprintf("%.1f%%", 100*float64(res.Stats.SelectRowsOut())/float64(in))
		}
		fmt.Printf("batch engine: %d batches, avg select selectivity %s, %d partitioned builds (max %d partitions)\n",
			b, sel, res.Stats.PartitionedBuilds(), res.Stats.MaxBuildPartitions())
	}
	fmt.Printf("phases: rewrite %.3fs, execute %.3fs, aggregate %.3fs\n",
		res.RewriteTime.Seconds(), res.ExecTime.Seconds(), res.AggregateTime.Seconds())
}

// runRemote sends the query to a urm-serve instance, retrying 429 sheds with
// jittered exponential backoff that honors the server's Retry-After hint.
func runRemote(baseURL, scenario, tenant, priority, text, method, strategy string, topk, repeat, retries, limit int) error {
	ctx := context.Background()
	for run := 1; run <= repeat; run++ {
		if repeat > 1 {
			fmt.Printf("--- run %d/%d ---\n", run, repeat)
		}
		var resp urm.QueryResponse
		start := time.Now()
		err := qos.Retry(ctx, qos.Backoff{Attempts: retries}, func(ctx context.Context) (time.Duration, bool, error) {
			return postQuery(ctx, baseURL, tenant, priority, urm.QueryRequest{
				Scenario: scenario,
				Query:    text,
				Method:   method,
				Strategy: strategy,
				TopK:     topk,
			}, &resp)
		})
		if err != nil {
			return err
		}
		printRemote(&resp, time.Since(start), limit)
	}
	return nil
}

// postQuery performs one POST /v1/query attempt, shaped for qos.Retry: a 429
// reports the server's Retry-After hint and is retryable, everything else is
// terminal.
func postQuery(ctx context.Context, baseURL, tenant, priority string, reqBody urm.QueryRequest, out *urm.QueryResponse) (time.Duration, bool, error) {
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return 0, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/query", bytes.NewReader(payload))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-URM-Tenant", tenant)
	}
	if priority != "" {
		req.Header.Set("X-URM-Priority", priority)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return 0, false, json.NewDecoder(resp.Body).Decode(out)
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var errBody struct {
		Error        string  `json:"error"`
		RetryAfterMS float64 `json:"retry_after_ms"`
	}
	_ = json.Unmarshal(body, &errBody)
	msg := errBody.Error
	if msg == "" {
		msg = string(body)
	}
	err = fmt.Errorf("server: %s (status %d)", msg, resp.StatusCode)
	if resp.StatusCode == http.StatusTooManyRequests {
		return time.Duration(errBody.RetryAfterMS * float64(time.Millisecond)), true, err
	}
	return 0, false, err
}

func printRemote(resp *urm.QueryResponse, elapsed time.Duration, limit int) {
	origin := "evaluated"
	switch {
	case resp.Stale:
		origin = fmt.Sprintf("STALE (epoch %d)", resp.Epoch)
	case resp.Cached:
		origin = "cached"
	case resp.Coalesced:
		origin = "coalesced"
	}
	fmt.Printf("method: %s   answers: %d   empty-probability: %.3f   %s   round-trip: %.3fs\n",
		resp.Method, len(resp.Answers), resp.EmptyProb, origin, elapsed.Seconds())
	if len(resp.Columns) > 0 {
		fmt.Printf("columns: %v\n", resp.Columns)
	}
	n := len(resp.Answers)
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		a := resp.Answers[i]
		fmt.Printf("  %3d. %-40v  p=%.4f\n", i+1, a.Values, a.Prob)
	}
	if len(resp.Answers) > n {
		fmt.Printf("  ... (%d more)\n", len(resp.Answers)-n)
	}
}
