// Command urm-apicheck guards the public API surface of the urm package: it
// extracts every exported declaration (types, funcs, methods, consts, vars)
// from the package source and diffs it against the committed golden file
// API.txt.
//
//	urm-apicheck          # fail if any committed surface line disappeared
//	urm-apicheck -write   # regenerate API.txt from the current source
//
// The check is asymmetric by design, in the spirit of apidiff: *removals*
// (and signature changes, which read as a removal plus an addition) fail,
// because they break downstream callers; *additions* only print a reminder to
// refresh the golden file.  CI runs the check on every change, so the public
// surface can grow but never silently shrink.
//
// The extraction is syntactic (go/parser over the package directory, no type
// checking), which keeps the tool std-lib-only and independent of build
// state.  Lines are the canonical single-line rendering of each declaration,
// sorted, one per line.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-apicheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-apicheck", flag.ContinueOnError)
	var (
		dir    = fs.String("dir", ".", "package directory to extract the surface from")
		golden = fs.String("golden", "API.txt", "golden surface file")
		write  = fs.Bool("write", false, "regenerate the golden file instead of checking")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}

	lines, err := surface(*dir)
	if err != nil {
		return err
	}
	content := strings.Join(lines, "\n") + "\n"

	if *write {
		if err := os.WriteFile(*golden, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d exported declarations)\n", *golden, len(lines))
		return nil
	}

	want, err := os.ReadFile(*golden)
	if err != nil {
		return fmt.Errorf("%w (run `urm-apicheck -write` to create the golden file)", err)
	}
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(strings.TrimSpace(string(want)), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			wantSet[l] = true
		}
	}
	haveSet := make(map[string]bool, len(lines))
	for _, l := range lines {
		haveSet[l] = true
	}

	var removed, added []string
	for l := range wantSet {
		if !haveSet[l] {
			removed = append(removed, l)
		}
	}
	for _, l := range lines {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)

	for _, l := range added {
		fmt.Printf("new:     %s\n", l)
	}
	if len(added) > 0 {
		fmt.Printf("%d addition(s); run `go run ./cmd/urm-apicheck -write` to record them\n", len(added))
	}
	if len(removed) > 0 {
		for _, l := range removed {
			fmt.Printf("REMOVED: %s\n", l)
		}
		return fmt.Errorf("%d exported declaration(s) removed from the public surface", len(removed))
	}
	fmt.Printf("api-surface: ok (%d exported declarations, %d new)\n", len(lines), len(added))
	return nil
}

// surface extracts the sorted exported-declaration lines of the package in dir.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders the exported parts of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		clone := *d
		clone.Body = nil
		clone.Doc = nil
		out = append(out, render(fset, &clone))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				out = append(out, typeLines(fset, s)...)
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, kw+" "+name.Name)
					}
				}
			}
		}
	}
	return out
}

// typeLines renders one exported type.  Struct and interface bodies are not
// recorded wholesale — that would turn every unexported-field edit into a
// spurious "removal" — only their exported members are, one line each, so the
// gate still catches a dropped field or interface method:
//
//	type Session struct
//	field Session.Name string     (only if the field were exported)
//	type Plan interface
//	method Plan.Signature() string
//
// Aliases and other type literals render in full: their right-hand side IS
// the public contract.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	if s.Assign != token.NoPos { // alias: the target is the surface
		return []string{"type " + name + " = " + render(fset, s.Type)}
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		out := []string{"type " + name + " struct"}
		for _, f := range t.Fields.List {
			if len(f.Names) == 0 { // embedded
				if id := baseIdent(f.Type); id != nil && id.IsExported() {
					out = append(out, "field "+name+"."+id.Name+" (embedded)")
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					out = append(out, "field "+name+"."+fn.Name+" "+render(fset, f.Type))
				}
			}
		}
		return out
	case *ast.InterfaceType:
		out := []string{"type " + name + " interface"}
		for _, m := range t.Methods.List {
			for _, mn := range m.Names {
				if mn.IsExported() {
					out = append(out, "method "+name+"."+mn.Name+" "+render(fset, m.Type))
				}
			}
		}
		return out
	default:
		sc := *s
		sc.Doc, sc.Comment = nil, nil
		return []string{"type " + render(fset, &sc)}
	}
}

// baseIdent unwraps pointers/selectors down to the identifying name of an
// embedded field's type.
func baseIdent(t ast.Expr) *ast.Ident {
	for {
		switch e := t.(type) {
		case *ast.StarExpr:
			t = e.X
		case *ast.SelectorExpr:
			return e.Sel
		case *ast.Ident:
			return e
		default:
			return nil
		}
	}
}

// exportedRecv reports whether a method receiver's base type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

var spaceRe = regexp.MustCompile(`\s+`)

// render prints the node and collapses it onto one line.
func render(fset *token.FileSet, node any) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, node); err != nil {
		return fmt.Sprintf("<render error: %v>", err)
	}
	return spaceRe.ReplaceAllString(b.String(), " ")
}
