// Command urm-gen emits the synthetic evaluation environment as files:
// the source and target schemas (JSON), the scored correspondences (CSV), the
// derived possible mappings (JSON) and the generated source instance (one CSV
// per relation).  It exists so the matching and data artifacts used by the
// benchmarks can be inspected or consumed by external tools.
//
// Usage:
//
//	urm-gen -target Excel -mappings 100 -size 40 -out ./artifacts
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	urm "github.com/probdb/urm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-gen:", err)
		os.Exit(1)
	}
}

type schemaJSON struct {
	Name      string         `json:"name"`
	Relations []relationJSON `json:"relations"`
}

type relationJSON struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
}

type mappingJSON struct {
	ID              string     `json:"id"`
	Prob            float64    `json:"probability"`
	Correspondences [][]string `json:"correspondences"` // [source, target, score]
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-gen", flag.ContinueOnError)
	var (
		target   = fs.String("target", "Excel", "target schema: Excel, Noris or Paragon")
		mappings = fs.Int("mappings", 100, "number of possible mappings h")
		sizeMB   = fs.Float64("size", 40, "source instance scale in MB")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		outDir   = fs.String("out", "urm-artifacts", "output directory")
		withData = fs.Bool("data", true, "also dump the source instance as CSV files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   *target,
		Mappings: *mappings,
		SizeMB:   *sizeMB,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	if err := writeSchema(filepath.Join(*outDir, "source_schema.json"), scenario.SourceSchema); err != nil {
		return err
	}
	if err := writeSchema(filepath.Join(*outDir, "target_schema.json"), scenario.TargetSchema); err != nil {
		return err
	}
	if err := writeCorrespondences(filepath.Join(*outDir, "correspondences.csv"), scenario.Matching.Correspondences); err != nil {
		return err
	}
	if err := writeMappings(filepath.Join(*outDir, "mappings.json"), scenario.Mappings()); err != nil {
		return err
	}
	if *withData {
		for _, name := range scenario.DB.RelationNames() {
			rel := scenario.DB.Relation(name)
			if err := writeRelation(filepath.Join(*outDir, "data_"+name+".csv"), rel); err != nil {
				return err
			}
		}
	}
	fmt.Printf("wrote %s scenario (h=%d, %gMB, %d source rows) to %s\n",
		scenario.Target, len(scenario.Mappings()), *sizeMB, scenario.DB.NumRows(), *outDir)
	return nil
}

func writeSchema(path string, s *urm.Schema) error {
	out := schemaJSON{Name: s.Name}
	for _, rel := range s.Relations {
		rj := relationJSON{Name: rel.Name}
		for _, c := range rel.Columns {
			rj.Columns = append(rj.Columns, c.Name)
		}
		out.Relations = append(out.Relations, rj)
	}
	return writeJSON(path, out)
}

func writeCorrespondences(path string, corrs []urm.Correspondence) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"source", "target", "score"}); err != nil {
		return err
	}
	for _, c := range corrs {
		if err := w.Write([]string{c.Source.String(), c.Target.String(), fmt.Sprintf("%.3f", c.Score)}); err != nil {
			return err
		}
	}
	return nil
}

func writeMappings(path string, maps urm.MappingSet) error {
	var out []mappingJSON
	for _, m := range maps {
		mj := mappingJSON{ID: m.ID, Prob: m.Prob}
		for _, c := range m.Correspondences {
			mj.Correspondences = append(mj.Correspondences,
				[]string{c.Source.String(), c.Target.String(), fmt.Sprintf("%.3f", c.Score)})
		}
		out = append(out, mj)
	}
	return writeJSON(path, out)
}

func writeRelation(path string, rel *urm.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(rel.Columns); err != nil {
		return err
	}
	for _, row := range rel.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		if err := w.Write(cells); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
