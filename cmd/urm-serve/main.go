// Command urm-serve runs the query service: it generates (or is pointed at)
// scenarios, registers them with warm base-relation indexes, and serves the
// HTTP JSON API with admission control, an answer cache, a per-scenario
// prepared-query cache (answer-cache misses skip parse/reformulate/compile;
// see /metrics prepared_builds vs prepared_reuses) and graceful drain.
//
// Usage:
//
//	urm-serve                                   # Excel scenario on :8080
//	urm-serve -targets Excel,Noris -addr :9000  # two scenarios
//	urm-serve -mappings 100 -size 40            # paper-scale data
//	urm-serve -max-concurrent 4 -timeout 10s    # tighter admission control
//	urm-serve -tenant-rate 50 -tenants gold=4   # per-tenant QoS (X-URM-Tenant)
//	urm-serve -data-dir ./data                  # durable scenarios (WAL + snapshots)
//
// With -data-dir, scenarios and every row appended through POST /v1/append
// are written to a checksummed write-ahead log and survive restarts: on boot
// the server replays the store (serving 503 "recovering" from /healthz until
// done), reports recovery stats, and only generates the -targets scenarios
// that are not already on disk.  Scenarios whose on-disk state fails its
// checksums are quarantined — the rest of the node serves normally while the
// quarantined names answer 503.
//
// Query it:
//
//	curl -s localhost:8080/v1/query -d '{
//	  "scenario": "excel",
//	  "query": "SELECT orderNum FROM PO WHERE telephone = '\''335-1736'\''",
//	  "method": "o-sharing"
//	}'
//
// SIGINT/SIGTERM triggers a graceful stop: new requests are refused with 503,
// in-flight requests finish (bounded by -drain-timeout), then the listener
// closes and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	urm "github.com/probdb/urm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		targets  = fs.String("targets", "Excel", "comma-separated target schemas to register (Excel, Noris, Paragon); each becomes a scenario named after its lowercased target")
		mappings = fs.Int("mappings", 100, "number of possible mappings h per scenario")
		sizeMB   = fs.Float64("size", 40, "source instance scale in MB")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		maxConc  = fs.Int("max-concurrent", 0, "maximum concurrent evaluations (0 = all cores); excess requests get 429")
		quWait   = fs.Duration("queue-wait", 100*time.Millisecond, "how long a request may wait for an evaluation slot before 429")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request evaluation deadline cap")
		cacheMB  = fs.Int("cache-mb", 64, "answer cache budget in MiB (0 disables caching, keeps request coalescing)")
		parallel = fs.Int("parallel", 1, "worker goroutines per evaluation (0 = all cores); total workers reach max-concurrent×parallel")
		warm     = fs.Bool("warm", true, "build every base-relation index at registration instead of on first use")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		tenantRate  = fs.Float64("tenant-rate", 0, "global evaluation admissions/sec shared by active tenants via X-URM-Tenant (0 disables rate limiting)")
		tenantBurst = fs.Float64("tenant-burst", 0, "shared burst allowance (0 = one second of -tenant-rate)")
		tenantSpecs = fs.String("tenants", "", "per-tenant QoS config, comma-separated name=weight[/priority], e.g. gold=4/interactive,batchjobs=1/batch")
		noStale     = fs.Bool("no-stale", false, "disable stale-answer degradation (serve 429 instead of a flagged previous-epoch answer)")

		dataDir   = fs.String("data-dir", "", "durable store directory; empty keeps scenarios in memory only")
		fsyncWAL  = fs.Bool("fsync", true, "fsync the write-ahead log after every appended row (registration, snapshots and drops are always synced)")
		snapEvery = fs.Int("snapshot-every", 256, "WAL records between snapshots that truncate the log (negative disables automatic snapshots)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	var tenants map[string]urm.TenantQoS
	if *tenantSpecs != "" {
		tenants = make(map[string]urm.TenantQoS)
		for _, spec := range strings.Split(*tenantSpecs, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" {
				return fmt.Errorf("-tenants: bad entry %q (want name=weight[/priority])", spec)
			}
			t, err := urm.ParseTenantSpec(name, val)
			if err != nil {
				return fmt.Errorf("-tenants: %w", err)
			}
			tenants[name] = t
		}
	}
	registry := urm.NewRegistry()
	if *dataDir != "" {
		// A data directory written by a newer build fails here, before the
		// listener comes up: refusing to serve beats misreading the format.
		st, err := urm.OpenStore(*dataDir, urm.StoreOptions{Fsync: *fsyncWAL, SnapshotEvery: *snapEvery})
		if err != nil {
			return err
		}
		registry = urm.NewRegistryWithStore(st)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The server starts listening before recovery and registration so
	// /healthz can report "recovering" (503) instead of refusing connections;
	// queries are gated until SetRecovering(false).
	srv := urm.NewServer(registry, urm.ServerConfig{
		MaxConcurrent:     *maxConc,
		QueueWait:         *quWait,
		RequestTimeout:    *timeout,
		CacheBytes:        cacheBytes,
		Parallelism:       *parallel,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		Tenants:           tenants,
		DisableStaleServe: *noStale,
	})
	srv.SetRecovering(true)
	httpServer := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (POST /v1/query, /v1/append, /v1/bump; GET /v1/scenarios, /healthz, /metrics)\n", *addr)
		if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	quarantined := 0
	if *dataDir != "" {
		stats, err := registry.Recover(ctx, urm.RegisterOptions{WarmIndexes: *warm})
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		quarantined = len(stats.Quarantined)
		fmt.Printf("recovered %d scenario(s), %d WAL record(s) replayed, %d quarantined in %dms\n",
			stats.Scenarios, stats.ReplayedRecords, quarantined, stats.Elapsed.Milliseconds())
		for _, name := range stats.Quarantined {
			fmt.Printf("  QUARANTINED %q: scenario answers 503 until its directory under %s/scenarios is repaired or removed\n",
				name, *dataDir)
		}
	}

	for _, target := range strings.Split(*targets, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		name := strings.ToLower(target)
		if _, ok := registry.Get(name); ok {
			fmt.Printf("scenario %q already recovered from %s; skipping generation\n", name, *dataDir)
			continue
		}
		if _, bad := registry.QuarantineReason(name); bad {
			fmt.Printf("scenario %q is quarantined; skipping generation\n", name)
			continue
		}
		fmt.Printf("registering scenario %q (%s, h=%d, %gMB, warm=%v)...\n", name, target, *mappings, *sizeMB, *warm)
		start := time.Now()
		scenario, err := urm.NewScenario(urm.ScenarioOptions{
			Target:   target,
			Mappings: *mappings,
			SizeMB:   *sizeMB,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		reg, err := scenario.Register(ctx, registry, name, urm.RegisterOptions{WarmIndexes: *warm})
		if err != nil {
			return err
		}
		fmt.Printf("  %d rows, %d mappings, %d indexes warmed in %.2fs\n",
			reg.NumRows(), len(reg.Mappings()), reg.WarmIndexBuilds(), time.Since(start).Seconds())
	}
	if registry.Len() == 0 && quarantined == 0 {
		return fmt.Errorf("no scenarios registered; pass -targets")
	}
	srv.SetRecovering(false)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful stop: refuse new queries (503), finish in-flight ones, then
	// close the listener.
	fmt.Println("signal received; draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "urm-serve:", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}
