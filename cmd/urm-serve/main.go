// Command urm-serve runs the query service: it generates (or is pointed at)
// scenarios, registers them with warm base-relation indexes, and serves the
// HTTP JSON API with admission control, an answer cache, a per-scenario
// prepared-query cache (answer-cache misses skip parse/reformulate/compile;
// see /metrics prepared_builds vs prepared_reuses) and graceful drain.
//
// Usage:
//
//	urm-serve                                   # Excel scenario on :8080
//	urm-serve -targets Excel,Noris -addr :9000  # two scenarios
//	urm-serve -mappings 100 -size 40            # paper-scale data
//	urm-serve -max-concurrent 4 -timeout 10s    # tighter admission control
//	urm-serve -tenant-rate 50 -tenants gold=4   # per-tenant QoS (X-URM-Tenant)
//	urm-serve -data-dir ./data                  # durable scenarios (WAL + snapshots)
//
// With -data-dir, scenarios and every row appended through POST /v1/append
// are written to a checksummed write-ahead log and survive restarts: on boot
// the server replays the store (serving 503 "recovering" from /healthz until
// done), reports recovery stats, and only generates the -targets scenarios
// that are not already on disk.  Scenarios whose on-disk state fails its
// checksums are quarantined — the rest of the node serves normally while the
// quarantined names answer 503.
//
// Query it:
//
//	curl -s localhost:8080/v1/query -d '{
//	  "scenario": "excel",
//	  "query": "SELECT orderNum FROM PO WHERE telephone = '\''335-1736'\''",
//	  "method": "o-sharing"
//	}'
//
// SIGINT/SIGTERM triggers a graceful stop: new requests are refused with 503,
// in-flight requests finish (bounded by -drain-timeout), then the listener
// closes and the process exits 0.
//
// # Multi-node sharding
//
// A deployment can partition one relation across several nodes behind a
// coordinator.  Each shard node regenerates the full scenario from the shared
// seed, keeps only its slice, and heartbeats the coordinator, which owns the
// shard map (lease-based: a node that stops heartbeating loses its shards
// after -lease-interval × 3) and no data:
//
//	urm-serve -coordinator -shard-count 2 -addr :8080 &
//	urm-serve -addr :8081 -shard-index 0 -shard-count 2 -shard-by Orders.o_orderkey \
//	          -coordinator-addr http://localhost:8080 -advertise http://localhost:8081 &
//	urm-serve -addr :8082 -shard-index 1 -shard-count 2 -shard-by Orders.o_orderkey \
//	          -coordinator-addr http://localhost:8080 -advertise http://localhost:8082 &
//
// Queries POSTed to the coordinator's /v1/query fan out to the lease owners
// as /v1/scatter requests and merge bit-identically to a single node holding
// all the data.  Methods that cannot distribute (o-sharing, top-k) answer 422.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	urm "github.com/probdb/urm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "urm-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("urm-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		targets  = fs.String("targets", "Excel", "comma-separated target schemas to register (Excel, Noris, Paragon); each becomes a scenario named after its lowercased target")
		mappings = fs.Int("mappings", 100, "number of possible mappings h per scenario")
		sizeMB   = fs.Float64("size", 40, "source instance scale in MB")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		maxConc  = fs.Int("max-concurrent", 0, "maximum concurrent evaluations (0 = all cores); excess requests get 429")
		quWait   = fs.Duration("queue-wait", 100*time.Millisecond, "how long a request may wait for an evaluation slot before 429")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-request evaluation deadline cap")
		cacheMB  = fs.Int("cache-mb", 64, "answer cache budget in MiB (0 disables caching, keeps request coalescing)")
		parallel = fs.Int("parallel", 1, "worker goroutines per evaluation (0 = all cores); total workers reach max-concurrent×parallel")
		warm     = fs.Bool("warm", true, "build every base-relation index at registration instead of on first use")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")

		tenantRate  = fs.Float64("tenant-rate", 0, "global evaluation admissions/sec shared by active tenants via X-URM-Tenant (0 disables rate limiting)")
		tenantBurst = fs.Float64("tenant-burst", 0, "shared burst allowance (0 = one second of -tenant-rate)")
		tenantSpecs = fs.String("tenants", "", "per-tenant QoS config, comma-separated name=weight[/priority], e.g. gold=4/interactive,batchjobs=1/batch")
		noStale     = fs.Bool("no-stale", false, "disable stale-answer degradation (serve 429 instead of a flagged previous-epoch answer)")
		noDelta     = fs.Bool("no-delta", false, "disable incremental maintenance of cached answers (appends invalidate every cached answer instead)")
		deltaMax    = fs.Int("delta-max-entries", 0, "maximum delta-maintained answers per scenario (0 = default 256)")

		dataDir   = fs.String("data-dir", "", "durable store directory; empty keeps scenarios in memory only")
		fsyncWAL  = fs.Bool("fsync", true, "fsync the write-ahead log after every appended row (registration, snapshots and drops are always synced)")
		snapEvery = fs.Int("snapshot-every", 256, "WAL records between snapshots that truncate the log (negative disables automatic snapshots)")

		coordMode   = fs.Bool("coordinator", false, "run as a multi-node coordinator: no data, fans /v1/query out to the lease-owning shard nodes")
		shardIndex  = fs.Int("shard-index", -1, "serve shard slice i of -shard-count (requires -shard-by); -1 serves the whole scenario")
		shardCount  = fs.Int("shard-count", 0, "total shards in the deployment (required by -coordinator and -shard-index)")
		shardBy     = fs.String("shard-by", "", "Relation.column to partition the source instance by, e.g. Orders.o_orderkey")
		shardKind   = fs.String("shard-kind", "hash", "partitioner: hash or range")
		coordAddr   = fs.String("coordinator-addr", "", "coordinator base URL this shard node heartbeats, e.g. http://localhost:8080")
		advertise   = fs.String("advertise", "", "URL the coordinator should reach this node at (default http://127.0.0.1<addr>)")
		nodeName    = fs.String("node-name", "", "stable node identity for leases (default the advertise URL)")
		leaseEvery  = fs.Duration("lease-interval", 2*time.Second, "heartbeat cadence; a node's leases expire after 3 missed heartbeats")
		slowQueryMS = fs.Int("slow-query-ms", 0, "log any query slower than this many milliseconds (0 disables the slow-query log)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}

	if *coordMode {
		return runCoordinator(*addr, *shardCount, *leaseEvery, *timeout, *dataDir, *fsyncWAL, *snapEvery, *drainTO)
	}

	// Shard mode: this node holds one slice of the partitioned relation.
	var shardSpec *urm.ShardSpec
	var shardIdentity *urm.ShardIdentity
	if *shardIndex >= 0 {
		if *shardCount < 1 {
			return fmt.Errorf("-shard-index requires -shard-count >= 1")
		}
		if *shardIndex >= *shardCount {
			return fmt.Errorf("-shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount)
		}
		rel, col, ok := strings.Cut(*shardBy, ".")
		if !ok || rel == "" || col == "" {
			return fmt.Errorf("-shard-index requires -shard-by Relation.column, got %q", *shardBy)
		}
		kind, err := urm.ParseShardKind(*shardKind)
		if err != nil {
			return fmt.Errorf("-shard-kind: %w", err)
		}
		shardSpec = &urm.ShardSpec{Relation: rel, Column: col, Shards: *shardCount, Kind: kind}
		adv := *advertise
		if adv == "" {
			if strings.HasPrefix(*addr, ":") {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		name := *nodeName
		if name == "" {
			name = adv
		}
		*advertise, *nodeName = adv, name
		shardIdentity = &urm.ShardIdentity{
			Node:     name,
			Index:    *shardIndex,
			Count:    *shardCount,
			Relation: rel,
			Column:   col,
			Kind:     kind.String(),
		}
	} else if *shardBy != "" {
		return fmt.Errorf("-shard-by requires -shard-index (or -coordinator)")
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	var tenants map[string]urm.TenantQoS
	if *tenantSpecs != "" {
		tenants = make(map[string]urm.TenantQoS)
		for _, spec := range strings.Split(*tenantSpecs, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(spec), "=")
			if !ok || name == "" {
				return fmt.Errorf("-tenants: bad entry %q (want name=weight[/priority])", spec)
			}
			t, err := urm.ParseTenantSpec(name, val)
			if err != nil {
				return fmt.Errorf("-tenants: %w", err)
			}
			tenants[name] = t
		}
	}
	registry := urm.NewRegistry()
	if *dataDir != "" {
		// A data directory written by a newer build fails here, before the
		// listener comes up: refusing to serve beats misreading the format.
		st, err := urm.OpenStore(*dataDir, urm.StoreOptions{Fsync: *fsyncWAL, SnapshotEvery: *snapEvery})
		if err != nil {
			return err
		}
		registry = urm.NewRegistryWithStore(st)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// The server starts listening before recovery and registration so
	// /healthz can report "recovering" (503) instead of refusing connections;
	// queries are gated until SetRecovering(false).
	serverCfg := urm.ServerConfig{
		MaxConcurrent:     *maxConc,
		QueueWait:         *quWait,
		RequestTimeout:    *timeout,
		CacheBytes:        cacheBytes,
		Parallelism:       *parallel,
		TenantRate:        *tenantRate,
		TenantBurst:       *tenantBurst,
		Tenants:           tenants,
		DisableStaleServe: *noStale,
		DisableDelta:      *noDelta,
		DeltaMaxEntries:   *deltaMax,
		Shard:             shardIdentity,
	}
	if *slowQueryMS > 0 {
		threshold := time.Duration(*slowQueryMS) * time.Millisecond
		serverCfg.SlowQueryThreshold = threshold
		serverCfg.AfterQuery = func(req *urm.QueryRequest, resp *urm.QueryResponse, err error, elapsed time.Duration) {
			if elapsed < threshold {
				return
			}
			status := "ok"
			if err != nil {
				status = err.Error()
			}
			fmt.Printf("SLOW %.1fms scenario=%s method=%q status=%q query=%q\n",
				float64(elapsed)/float64(time.Millisecond), req.Scenario, req.Method, status, req.Query)
		}
	}
	srv := urm.NewServer(registry, serverCfg)
	srv.SetRecovering(true)
	httpServer := &http.Server{Addr: *addr, Handler: srv}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("serving on %s (POST /v1/query, /v1/append, /v1/bump; GET /v1/scenarios, /healthz, /metrics)\n", *addr)
		if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	quarantined := 0
	if *dataDir != "" {
		stats, err := registry.Recover(ctx, urm.RegisterOptions{WarmIndexes: *warm})
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		quarantined = len(stats.Quarantined)
		fmt.Printf("recovered %d scenario(s), %d WAL record(s) replayed, %d quarantined in %dms\n",
			stats.Scenarios, stats.ReplayedRecords, quarantined, stats.Elapsed.Milliseconds())
		for _, name := range stats.Quarantined {
			fmt.Printf("  QUARANTINED %q: scenario answers 503 until its directory under %s/scenarios is repaired or removed\n",
				name, *dataDir)
		}
	}

	for _, target := range strings.Split(*targets, ",") {
		target = strings.TrimSpace(target)
		if target == "" {
			continue
		}
		name := strings.ToLower(target)
		if _, ok := registry.Get(name); ok {
			fmt.Printf("scenario %q already recovered from %s; skipping generation\n", name, *dataDir)
			continue
		}
		if _, bad := registry.QuarantineReason(name); bad {
			fmt.Printf("scenario %q is quarantined; skipping generation\n", name)
			continue
		}
		fmt.Printf("registering scenario %q (%s, h=%d, %gMB, warm=%v)...\n", name, target, *mappings, *sizeMB, *warm)
		start := time.Now()
		scenario, err := urm.NewScenario(urm.ScenarioOptions{
			Target:   target,
			Mappings: *mappings,
			SizeMB:   *sizeMB,
			Seed:     *seed,
		})
		if err != nil {
			return err
		}
		if shardSpec != nil {
			// Every node regenerates the identical full scenario from the
			// shared seed and keeps only its slice, so the slices exactly
			// partition the data without any cross-node transfer.
			scenario, err = scenario.ShardSlice(*shardSpec, *shardIndex)
			if err != nil {
				return fmt.Errorf("slicing %q for shard %d/%d: %w", name, *shardIndex, *shardCount, err)
			}
			fmt.Printf("  keeping shard %d/%d of %s.%s (%s)\n", *shardIndex, *shardCount, shardSpec.Relation, shardSpec.Column, *shardKind)
		}
		reg, err := scenario.Register(ctx, registry, name, urm.RegisterOptions{WarmIndexes: *warm})
		if err != nil {
			return err
		}
		fmt.Printf("  %d rows, %d mappings, %d indexes warmed in %.2fs\n",
			reg.NumRows(), len(reg.Mappings()), reg.WarmIndexBuilds(), time.Since(start).Seconds())
	}
	if registry.Len() == 0 && quarantined == 0 {
		return fmt.Errorf("no scenarios registered; pass -targets")
	}
	srv.SetRecovering(false)

	// Heartbeats start only once the node can actually answer /v1/scatter, so
	// the coordinator never routes to a node that is still recovering.
	if shardIdentity != nil && *coordAddr != "" {
		fmt.Printf("heartbeating shard %d to %s every %s as %q (%s)\n",
			*shardIndex, *coordAddr, *leaseEvery, *nodeName, *advertise)
		go heartbeat(ctx, *coordAddr, *nodeName, *advertise, *shardIndex, *leaseEvery)
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful stop: refuse new queries (503), finish in-flight ones, then
	// close the listener.
	fmt.Println("signal received; draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "urm-serve:", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Println("drained; bye")
	return nil
}

// runCoordinator serves the multi-node coordinator: it holds no scenario
// data, just the lease table (durable when -data-dir is set) and the fan-out
// logic for /v1/query, /v1/scenarios, /v1/lease, /healthz and /metrics.
func runCoordinator(addr string, shards int, leaseEvery, timeout time.Duration, dataDir string, fsyncWAL bool, snapEvery int, drainTO time.Duration) error {
	if shards < 1 {
		return fmt.Errorf("-coordinator requires -shard-count >= 1")
	}
	var st *urm.Store
	if dataDir != "" {
		var err error
		st, err = urm.OpenStore(dataDir, urm.StoreOptions{Fsync: fsyncWAL, SnapshotEvery: snapEvery})
		if err != nil {
			return err
		}
	}
	coord, err := urm.NewCoordinator(urm.CoordinatorConfig{
		Shards:         shards,
		LeaseInterval:  leaseEvery,
		RequestTimeout: timeout,
		Store:          st,
	})
	if err != nil {
		return err
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()

	httpServer := &http.Server{Addr: addr, Handler: coord}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("coordinating %d shard(s) on %s (POST /v1/query, /v1/lease; GET /v1/scenarios, /healthz, /metrics); lease interval %s\n",
			shards, addr, leaseEvery)
		if err := httpServer.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("signal received; shutting down...")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTO)
	defer cancel()
	if err := httpServer.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	fmt.Println("bye")
	return nil
}

// heartbeat keeps this node's shard lease alive: it POSTs /v1/lease to the
// coordinator every interval until ctx is cancelled.  The coordinator's
// response carries the cadence it actually expects; the loop adopts it so
// interval configuration lives on the coordinator.  Failures are logged on
// state change only — a dead coordinator must not spam the node's log, and
// the lease design tolerates missed beats (ownership expires after three).
func heartbeat(ctx context.Context, coordAddr, node, addrURL string, shardIndex int, interval time.Duration) {
	body, err := json.Marshal(urm.LeaseRequest{Node: node, Addr: addrURL, Shards: []int{shardIndex}})
	if err != nil {
		fmt.Fprintln(os.Stderr, "urm-serve: heartbeat:", err)
		return
	}
	target := strings.TrimSuffix(coordAddr, "/") + "/v1/lease"
	healthy := false
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		ok, coordInterval := beatOnce(ctx, target, body)
		if ok != healthy {
			healthy = ok
			if ok {
				fmt.Printf("lease acquired: shard %d acknowledged by %s\n", shardIndex, coordAddr)
			} else {
				fmt.Fprintf(os.Stderr, "urm-serve: heartbeat to %s failing; retrying every %s\n", coordAddr, interval)
			}
		}
		if ok && coordInterval > 0 && coordInterval != interval {
			interval = coordInterval
			ticker.Reset(interval)
			fmt.Printf("adopting coordinator lease interval %s\n", interval)
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// beatOnce sends one heartbeat and reports whether the coordinator accepted
// it, plus the cadence the coordinator wants (0 when unavailable).
func beatOnce(ctx context.Context, target string, body []byte) (bool, time.Duration) {
	reqCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return false, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, 0
	}
	var ack struct {
		IntervalMS float64 `json:"interval_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return true, 0 // the beat landed even if the ack is unreadable
	}
	return true, time.Duration(ack.IntervalMS * float64(time.Millisecond))
}
