// Command urm-bench reproduces the tables and figures of the paper's
// evaluation (Section VIII).  Each experiment prints a table whose rows mirror
// the corresponding figure's data series.
//
// Usage:
//
//	urm-bench                          # run every experiment at default scale
//	urm-bench -fig Fig11a              # run a single figure
//	urm-bench -mappings 500 -size 100  # paper-scale run (slower)
//	urm-bench -parallel 0              # use the concurrent runtime on all cores
//	urm-bench -csv -out results/       # also write CSV files
//	urm-bench -list                    # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/probdb/urm/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "urm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("urm-bench", flag.ContinueOnError)
	var (
		figID    = fs.String("fig", "all", "experiment ID to run (e.g. Fig11a, TableIV) or 'all'")
		mappings = fs.Int("mappings", 0, "default number of possible mappings h (0 = harness default 100)")
		sizeMB   = fs.Float64("size", 0, "default database scale in MB (0 = harness default 40; the paper uses 100)")
		seed     = fs.Uint64("seed", 42, "data-generation seed")
		runs     = fs.Int("runs", 1, "repetitions averaged per measurement")
		sweepH   = fs.String("mapping-sweep", "", "comma-separated mapping counts for the sweep figures (default 100,200,300,400,500)")
		sweepMB  = fs.String("size-sweep", "", "comma-separated database sizes for the sweep figures (default 20,40,60,80,100)")
		parallel = fs.Int("parallel", 1, "evaluation worker goroutines (0 = all cores; 1 = sequential, the paper's setting)")
		batch    = fs.Int("batch", -1, "engine batch-size override: -1 = engine default, 0 = tuple-at-a-time fallback, N = N rows per batch")
		csv      = fs.Bool("csv", false, "also emit CSV for each table")
		outDir   = fs.String("out", "", "directory to write <ID>.csv files into")
		list     = fs.Bool("list", false, "list experiment IDs and exit")
		jsonSnap = fs.Bool("json", false, "measure the engine perf snapshot and write BENCH_engine.json instead of running experiments")
		serve    = fs.Bool("serve", false, "run the query-service benchmark (cold vs cached latency through the HTTP layer) and merge it into BENCH_engine.json")
		storeB   = fs.Bool("store", false, "run the durable-store benchmark (WAL append fsync on/off vs in-memory, snapshot and recovery cost) and merge it into BENCH_engine.json")
		shardsB  = fs.Bool("shards", false, "run the scatter-gather scaling benchmark (shards 1/2/4/8 in-process + 2-node HTTP coordinator) and merge it into BENCH_engine.json")
		deltaB   = fs.Bool("delta", false, "run the incremental-maintenance benchmark (append+query mix, delta-maintained vs invalidate-all) and merge it into BENCH_engine.json")
		check    = fs.Bool("check", false, "validate BENCH_engine.json (operator speedups above their floors) and exit — the CI bench-regression gate")
		cpuProf  = fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = fs.String("memprofile", "", "write a pprof heap profile at the end of the run to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("unexpected trailing arguments: %q", fs.Args())
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "urm-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "urm-bench: -memprofile:", err)
			}
		}()
	}
	if *jsonSnap {
		return writeSnapshot(*outDir, out)
	}
	if *serve {
		return serveSnapshot(*outDir, out)
	}
	if *storeB {
		return storeSnapshot(*outDir, out)
	}
	if *shardsB {
		return shardsSnapshot(*outDir, out)
	}
	if *deltaB {
		return deltaSnapshot(*outDir, out)
	}
	if *check {
		return checkSnapshot(*outDir, out)
	}
	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(out, "%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	cfg := bench.DefaultConfig()
	if *mappings > 0 {
		cfg.Mappings = *mappings
	}
	if *sizeMB > 0 {
		cfg.SizeMB = *sizeMB
	}
	cfg.Seed = *seed
	cfg.Runs = *runs
	cfg.Parallelism = *parallel
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	// The flag speaks user language (0 = tuple-at-a-time, -1 = engine default);
	// Config speaks engine language (negative = tuple-at-a-time, 0 = default).
	switch {
	case *batch == 0:
		cfg.BatchSize = -1
	case *batch > 0:
		cfg.BatchSize = *batch
	}
	if *sweepH != "" {
		ints, err := parseInts(*sweepH)
		if err != nil {
			return fmt.Errorf("-mapping-sweep: %w", err)
		}
		cfg.MappingSweep = ints
	}
	if *sweepMB != "" {
		floats, err := parseFloats(*sweepMB)
		if err != nil {
			return fmt.Errorf("-size-sweep: %w", err)
		}
		cfg.SizeSweep = floats
	}

	runner := bench.NewRunner(cfg)
	var experiments []bench.Experiment
	if *figID == "all" {
		experiments = bench.Experiments()
	} else {
		e, err := bench.ExperimentByID(*figID)
		if err != nil {
			return err
		}
		experiments = []bench.Experiment{e}
	}

	fmt.Fprintf(out, "urm-bench: h=%d, size=%.0fMB, seed=%d, runs=%d, parallel=%d\n\n",
		cfg.Mappings, cfg.SizeMB, cfg.Seed, cfg.Runs, cfg.Parallelism)
	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(runner)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintln(out, table.String())
		fmt.Fprintf(out, "(%s completed in %.2fs)\n\n", e.ID, time.Since(start).Seconds())
		if *csv {
			fmt.Fprintln(out, table.CSV())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*outDir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSnapshot measures the engine perf snapshot (operator throughput versus
// the retained naive reference, plus per-method end-to-end timings) and writes
// it as machine-readable JSON to <dir>/BENCH_engine.json.  A serve section a
// previous `urm-bench -serve` run merged into the file is preserved, mirroring
// how -serve preserves the operator measurements.
func writeSnapshot(dir string, out *os.File) error {
	fmt.Fprintln(out, "urm-bench: measuring engine perf snapshot (takes ~10s)...")
	snap, err := bench.Snapshot()
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	if prev, err := bench.ReadSnapshot(path); err == nil {
		snap.Serve = prev.Serve
		snap.QoS = prev.QoS
		snap.Store = prev.Store
		snap.Shards = prev.Shards
		snap.Delta = prev.Delta
	}
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Operators))
	for name := range snap.Operators {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ob := snap.Operators[name]
		fmt.Fprintf(out, "  %-9s naive %8.3fms  engine %8.3fms  speedup %.2fx\n",
			name, float64(ob.NaiveNsOp)/1e6, float64(ob.EngineNsOp)/1e6, ob.Speedup)
	}
	methods := make([]string, 0, len(snap.Methods))
	for name := range snap.Methods {
		methods = append(methods, name)
	}
	sort.Strings(methods)
	fmt.Fprintln(out, "prepared re-execution vs cold Evaluate (h=100 workload):")
	for _, name := range methods {
		mb := snap.Methods[name]
		if mb.PreparedSpeedup == 0 {
			continue
		}
		fmt.Fprintf(out, "  %-9s cold %8.3fms  prepared %8.3fms  speedup %.2fx\n",
			name, mb.ColdMs, mb.PreparedMs, mb.PreparedSpeedup)
	}
	if mc := snap.Multicore; mc != nil {
		fmt.Fprintf(out, "partitioned join build (GOMAXPROCS=%d, %d CPUs, %d build rows): seq %8.3fms  %d workers %8.3fms  speedup %.2fx\n",
			mc.GOMAXPROCS, mc.NumCPU, mc.BuildRows,
			float64(mc.SequentialNs)/1e6, mc.Workers, float64(mc.ParallelNs)/1e6, mc.Speedup)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// serveSnapshot runs the query-service benchmark and the tenant-isolation
// (QoS) benchmark and merges their sections into <dir>/BENCH_engine.json,
// preserving the operator and method measurements a previous `urm-bench
// -json` run recorded (the file is created if absent — note that `-check`
// requires operator pairs, so run `-json` too before committing a fresh
// file).
func serveSnapshot(dir string, out *os.File) error {
	fmt.Fprintln(out, "urm-bench: measuring query-service snapshot (takes ~10s)...")
	sb, err := bench.ServeSnapshot()
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "urm-bench: measuring tenant-isolation (QoS) snapshot (takes ~15s)...")
	qb, err := bench.QoSSnapshot()
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	snap, err := bench.ReadSnapshot(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		snap = &bench.EngineSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	}
	snap.Serve = sb
	snap.QoS = qb
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  cold:   %3d requests  p50 %8.2fms  p99 %8.2fms\n", sb.Cold.Requests, sb.Cold.P50Ms, sb.Cold.P99Ms)
	fmt.Fprintf(out, "  cached: %3d requests  p50 %8.2fms  p99 %8.2fms  %8.0f req/s\n",
		sb.Cached.Requests, sb.Cached.P50Ms, sb.Cached.P99Ms, sb.ThroughputRPS)
	fmt.Fprintf(out, "  evaluations %d, cache hits %d, misses %d, index builds %d, lookups %d\n",
		sb.Evaluations, sb.CacheHits, sb.CacheMisses, sb.IndexBuilds, sb.IndexLookups)
	fmt.Fprintf(out, "qos (hostile tenant at %.0fx budget):\n", qb.OverBudget)
	fmt.Fprintf(out, "  solo:      %3d/%3d ok  p50 %8.2fms  p99 %8.2fms\n",
		qb.Solo.Succeeded, qb.Solo.Requests, qb.Solo.Latency.P50Ms, qb.Solo.Latency.P99Ms)
	fmt.Fprintf(out, "  contended: %3d/%3d ok  p50 %8.2fms  p99 %8.2fms  (p99 ratio %.2fx, success ratio %.2fx)\n",
		qb.Contended.Succeeded, qb.Contended.Requests, qb.Contended.Latency.P50Ms, qb.Contended.Latency.P99Ms,
		qb.P99Ratio, qb.SuccessRatio)
	fmt.Fprintf(out, "  hostile: %d attempts, %d admitted, %d rejected (server shed %d)\n",
		qb.HostileAttempts, qb.HostileAdmitted, qb.HostileRejected, qb.ServerShedRateLimited)
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// storeSnapshot runs the durable-store benchmark and merges its section into
// <dir>/BENCH_engine.json, preserving every other section.
func storeSnapshot(dir string, out *os.File) error {
	fmt.Fprintln(out, "urm-bench: measuring durable-store snapshot (takes ~10s)...")
	sb, err := bench.StoreSnapshot()
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	snap, err := bench.ReadSnapshot(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		snap = &bench.EngineSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	}
	snap.Store = sb
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  register (%d rows): %8.3fms   snapshot: %8.3fms   recover: %8.3fms (%d records replayed)\n",
		sb.Rows, sb.RegisterMs, sb.SnapshotMs, sb.RecoverMs, sb.ReplayedRecords)
	fmt.Fprintf(out, "  append: memory %8d ns/op   wal %8d ns/op   wal+fsync %8d ns/op (fsync overhead %.1fx)\n",
		sb.AppendMemNs, sb.AppendNoSyncNs, sb.AppendFsyncNs, sb.FsyncOverhead)
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// shardsSnapshot runs the scatter-gather scaling benchmark and merges its
// section into <dir>/BENCH_engine.json, preserving every other section.
func shardsSnapshot(dir string, out *os.File) error {
	fmt.Fprintln(out, "urm-bench: measuring scatter-gather scaling snapshot (takes ~30s)...")
	sb, err := bench.ShardsSnapshot()
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	snap, err := bench.ReadSnapshot(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		snap = &bench.EngineSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	}
	snap.Shards = sb
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  %s over %d rows of Orders, h=%d (%d CPUs):\n", sb.Method, sb.Rows, sb.Mappings, sb.NumCPU)
	for _, p := range sb.InProcess {
		fmt.Fprintf(out, "  shards=%d  %8.3fms/op  speedup %.2fx\n", p.Shards, float64(p.NsOp)/1e6, p.Speedup)
	}
	fmt.Fprintf(out, "  2-node HTTP coordinator: %d requests  p50 %8.2fms  p99 %8.2fms\n",
		sb.TwoNode.Requests, sb.TwoNode.P50Ms, sb.TwoNode.P99Ms)
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// deltaSnapshot runs the incremental-maintenance benchmark and merges its
// section into <dir>/BENCH_engine.json, preserving every other section.
func deltaSnapshot(dir string, out *os.File) error {
	fmt.Fprintln(out, "urm-bench: measuring incremental-maintenance snapshot (takes ~30s)...")
	db, err := bench.DeltaSnapshot()
	if err != nil {
		return err
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	snap, err := bench.ReadSnapshot(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		snap = &bench.EngineSnapshot{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	}
	snap.Delta = db
	data, err := snap.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  %s on %q, %d rounds x %d-row batches, %d queries/round:\n",
		db.Method, db.Scenario, db.Rounds, db.BatchSize, db.QueriesPerRound)
	fmt.Fprintf(out, "  delta:    %3d queries  p50 %8.3fms  p99 %8.3fms  (maintenance %8.2fms total)\n",
		db.Delta.Requests, db.Delta.P50Ms, db.Delta.P99Ms, db.MaintainMs)
	fmt.Fprintf(out, "  baseline: %3d queries  p50 %8.3fms  p99 %8.3fms\n",
		db.Baseline.Requests, db.Baseline.P50Ms, db.Baseline.P99Ms)
	fmt.Fprintf(out, "  p99 ratio %.2fx, mean ratio %.2fx; delta applied %d, fallbacks %d, in-place index appends %d\n",
		db.P99Ratio, db.MeanRatio, db.DeltaApplied, db.DeltaFallbacks, db.IndexInplaceAppends)
	fmt.Fprintf(out, "  evaluations: delta %d vs baseline %d\n", db.DeltaEvaluations, db.BaselineEvaluations)
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// checkSnapshot loads <dir>/BENCH_engine.json and fails if any operator pair
// regressed below its reference implementation.
func checkSnapshot(dir string, out *os.File) error {
	if dir == "" {
		dir = "."
	}
	path := filepath.Join(dir, "BENCH_engine.json")
	snap, err := bench.ReadSnapshot(path)
	if err != nil {
		return err
	}
	if err := bench.CheckRegression(snap); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(out, "bench-regression: %s ok (%d operator pairs above their floors)\n", path, len(snap.Operators))
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
