// Package urm (Uncertain-matching Relational Matching) is a library for
// evaluating probabilistic queries over uncertain schema matching, a
// from-scratch reproduction of:
//
//	R. Cheng, J. Gong, D. W. Cheung, J. Cheng.
//	"Evaluating Probabilistic Queries over Uncertain Matching", ICDE 2012.
//
// An uncertain matching between a source schema (with data) and a target
// schema is represented as a set of possible mappings, each a one-to-one
// partial set of attribute correspondences with a probability of being the
// correct one.  A probabilistic query is posed against the target schema and
// answered through every possible mapping, returning each answer tuple with
// the probability that it is correct.
//
// The package exposes the full pipeline:
//
//   - schema modelling and a lexical schema matcher (a stand-in for COMA++),
//   - top-h possible-mapping generation via maximum-weight bipartite
//     assignment and Murty's ranking algorithm,
//   - an in-memory relational engine for the source instance,
//   - a small SQL-subset parser for target queries, and
//   - the paper's evaluation algorithms: basic, e-basic, e-MQO, q-sharing,
//     o-sharing (with the Random/SNF/SEF operator-selection strategies) and
//     probabilistic top-k.
//
// # Quick start
//
// The session API is the front door: a Session binds a target schema, a
// source instance and the possible mappings; Prepare compiles a query once
// (parse, reformulate through every mapping, optimize, compile plans) and
// Execute/Stream run it any number of times:
//
//	source := urm.NewSchema("Source")
//	// ... add relations ...
//	target := urm.NewSchema("Target")
//	// ... add relations ...
//
//	matching, _ := urm.Match(source, target, urm.MatchOptions{Mappings: 10})
//	db := urm.NewInstance("db")
//	// ... load relations ...
//
//	sess, _ := urm.NewSession(target, db, matching.Mappings)
//	pq, _ := sess.Prepare("SELECT addr FROM Person WHERE phone = '123'")
//	res, _ := pq.Execute(ctx, urm.WithMethod(urm.OSharing))
//	for _, a := range res.Answers {
//	    fmt.Println(a.Tuple, a.Prob)
//	}
//
// Large answer sets can be streamed instead of materialized:
//
//	rows, _ := pq.Stream(ctx, urm.WithParallelism(8))
//	defer rows.Close()
//	for rows.Next() {
//	    a := rows.Answer()
//	    ...
//	}
//
// Evaluation behaviour is tuned with functional options — WithMethod,
// WithStrategy, WithParallelism, WithTopK, WithRandomSeed — passed to
// NewSession (defaults) or per call.
//
// # Concurrency
//
// Evaluation runs on a bounded worker pool.  WithParallelism sets the worker
// count (0 = GOMAXPROCS, 1 = sequential); results are identical at any
// setting.  Execute and Stream take a context.Context whose cancellation or
// deadline aborts the evaluation promptly.
//
// The pre-session entry points (NewEvaluator, Evaluate, EvaluateContext,
// EvaluateTopK, EvaluateTopKContext) remain as deprecated wrappers for one
// release; see the README migration table.
//
// See the examples directory for complete programs and DESIGN.md for the
// layer map (schema → match → query → engine → core) and where the evaluation
// runtime sits.
package urm

import (
	"context"
	"fmt"
	"time"

	"github.com/probdb/urm/internal/core"
	"github.com/probdb/urm/internal/datagen"
	"github.com/probdb/urm/internal/engine"
	"github.com/probdb/urm/internal/match"
	"github.com/probdb/urm/internal/query"
	"github.com/probdb/urm/internal/schema"
	"github.com/probdb/urm/internal/server"
	"github.com/probdb/urm/internal/shard"
	"github.com/probdb/urm/internal/store"
)

// Schema-model types re-exported from the schema layer.
type (
	// Schema is a named set of relation schemas.
	Schema = schema.Schema
	// RelationSchema is the schema of one relation.
	RelationSchema = schema.RelationSchema
	// Column is one attribute declaration of a relation schema.
	Column = schema.Column
	// Attribute identifies a relation attribute.
	Attribute = schema.Attribute
	// Correspondence is a scored source/target attribute pair.
	Correspondence = schema.Correspondence
	// Mapping is one possible mapping with its probability.
	Mapping = schema.Mapping
	// MappingSet is a set of possible mappings.
	MappingSet = schema.MappingSet
	// Matching is the uncertain matching: correspondences plus mappings.
	Matching = schema.Matching
)

// Engine types re-exported from the storage/execution layer.
type (
	// Instance is an in-memory source database.
	Instance = engine.Instance
	// Relation is a materialized table.
	Relation = engine.Relation
	// Tuple is a row of values.
	Tuple = engine.Tuple
	// Value is a typed datum.
	Value = engine.Value
)

// Query and evaluation types.
type (
	// Query is a parsed target query.
	Query = query.Query
	// Result is a probabilistic query result.
	Result = core.Result
	// Answer is one probabilistic answer tuple.
	Answer = core.Answer
	// Method selects an evaluation algorithm.
	Method = core.Method
	// Strategy selects an o-sharing operator-selection strategy.
	Strategy = core.Strategy
	// Options tunes evaluation.
	Options = core.Options
	// Evaluator evaluates probabilistic queries.
	Evaluator = core.Evaluator
)

// Evaluation methods (Section III-B, IV and V of the paper).
const (
	Basic    = core.MethodBasic
	EBasic   = core.MethodEBasic
	EMQO     = core.MethodEMQO
	QSharing = core.MethodQSharing
	OSharing = core.MethodOSharing
)

// Operator-selection strategies for o-sharing (Section VI-A).
const (
	SEF    = core.StrategySEF
	SNF    = core.StrategySNF
	Random = core.StrategyRandom
)

// Attribute value kinds re-exported for building relations.
const (
	TypeString = schema.TypeString
	TypeInt    = schema.TypeInt
	TypeFloat  = schema.TypeFloat
)

// NewSchema creates an empty schema.
func NewSchema(name string) *Schema { return schema.NewSchema(name) }

// NewInstance creates an empty source database.
func NewInstance(name string) *Instance { return engine.NewInstance(name) }

// NewRelation creates an empty relation with the given columns.
func NewRelation(name string, columns []string) *Relation { return engine.NewRelation(name, columns) }

// String builds a string value.
func String(s string) Value { return engine.S(s) }

// Int builds an integer value.
func Int(i int64) Value { return engine.I(i) }

// Float builds a floating-point value.
func Float(f float64) Value { return engine.F(f) }

// Null builds the NULL value.
func Null() Value { return engine.Null() }

// MatchOptions configures Match.
type MatchOptions struct {
	// Mappings is the number h of possible mappings to derive (default 10).
	Mappings int
	// Threshold is the matcher's minimum similarity (default 0.45).
	Threshold float64
	// MaxCandidatesPerTarget caps candidates per target attribute (0 = all).
	MaxCandidatesPerTarget int
	// Synonyms optionally extends the matcher's synonym table.
	Synonyms map[string]string
}

// Match runs the lexical schema matcher between the source and target schemas
// and derives the top-h possible mappings with probabilities.
func Match(source, target *Schema, opts MatchOptions) (*Matching, error) {
	if opts.Mappings <= 0 {
		opts.Mappings = 10
	}
	return match.BuildMatching(source, target, match.MatcherOptions{
		Threshold:              opts.Threshold,
		MaxCandidatesPerTarget: opts.MaxCandidatesPerTarget,
		Synonyms:               opts.Synonyms,
	}, opts.Mappings)
}

// MatchCorrespondences runs only the matcher, returning scored correspondences
// without deriving mappings.
func MatchCorrespondences(source, target *Schema, opts MatchOptions) *Matching {
	return match.NewMatcher(match.MatcherOptions{
		Threshold:              opts.Threshold,
		MaxCandidatesPerTarget: opts.MaxCandidatesPerTarget,
		Synonyms:               opts.Synonyms,
	}).Match(source, target)
}

// DeriveMappings derives the top-h possible mappings from an explicit scored
// correspondence set (for callers that bring their own matcher output).
func DeriveMappings(correspondences []Correspondence, h int) (MappingSet, error) {
	return match.KBestMappings(correspondences, match.KBestOptions{K: h})
}

// NewMapping builds a possible mapping from correspondences; probabilities of
// a hand-built mapping set can be normalised with MappingSet.NormalizeProbabilities.
func NewMapping(id string, correspondences []Correspondence, prob float64) (*Mapping, error) {
	return schema.NewMapping(id, correspondences, prob)
}

// ParseQuery parses a target query written in the library's SQL subset
// (SELECT ... FROM ... WHERE ... with conjunctive conditions, aliases and
// COUNT/SUM/AVG/MIN/MAX aggregates).
func ParseQuery(name string, target *Schema, text string) (*Query, error) {
	return query.Parse(name, target, text)
}

// NewEvaluator builds an evaluator over a source instance and a mapping set.
//
// Deprecated: use NewSession, which additionally owns the prepared-query
// cache so repeated queries skip reformulation and plan compilation.
func NewEvaluator(db *Instance, maps MappingSet) *Evaluator { return core.NewEvaluator(db, maps) }

// Evaluate is a convenience for one-off evaluation: it runs the query over the
// mappings and instance with the given options.
//
// Deprecated: use Session.Execute (or Prepare + PreparedQuery.Execute when the
// query runs more than once).  Evaluate pays the full front half — parse-time
// validation, reformulation through every mapping, plan compilation — on
// every call.
func Evaluate(q *Query, maps MappingSet, db *Instance, opts Options) (*Result, error) {
	return core.NewEvaluator(db, maps).Evaluate(q, opts)
}

// EvaluateContext is Evaluate under a context: cancelling the context (or
// letting its deadline pass) aborts the evaluation promptly with the context's
// error.  Work fans out over opts.Parallelism worker goroutines; the answers
// do not depend on the setting.
//
// Deprecated: use Session.Execute, which takes a context directly.
func EvaluateContext(ctx context.Context, q *Query, maps MappingSet, db *Instance, opts Options) (*Result, error) {
	return core.NewEvaluator(db, maps).EvaluateContext(ctx, q, opts)
}

// EvaluateTopK runs the probabilistic top-k algorithm of Section VII.
//
// Deprecated: use Session.Execute with WithTopK(k).
func EvaluateTopK(q *Query, maps MappingSet, db *Instance, k int, opts Options) (*Result, error) {
	return core.NewEvaluator(db, maps).EvaluateTopK(q, k, opts)
}

// EvaluateTopKContext is EvaluateTopK under a context.  The top-k traversal is
// inherently sequential, so opts.Parallelism is ignored, but cancellation and
// deadlines are honoured.
//
// Deprecated: use Session.Execute with WithTopK(k).
func EvaluateTopKContext(ctx context.Context, q *Query, maps MappingSet, db *Instance, k int, opts Options) (*Result, error) {
	return core.NewEvaluator(db, maps).EvaluateTopKContext(ctx, q, k, opts)
}

// ParseMethod converts a method name ("basic", "e-basic", "e-mqo",
// "q-sharing", "o-sharing") into a Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseStrategy converts a strategy name ("SEF", "SNF", "Random") into a
// Strategy.
func ParseStrategy(s string) (Strategy, error) { return core.ParseStrategy(s) }

// ORatio returns the average pairwise overlap ratio of a mapping set, the
// mapping-similarity metric of Section VIII (Figure 9).
func ORatio(maps MappingSet) float64 { return maps.ORatio() }

// Scenario is a ready-made evaluation environment: the synthetic TPC-H-style
// purchase-order source instance, one of the paper's target schemas, its
// correspondences and possible mappings, and the Table III workload queries.
// It is the programmatic face of the benchmark data generator.
type Scenario struct {
	// Target is the target schema name ("Excel", "Noris" or "Paragon").
	Target string
	// SourceSchema and TargetSchema describe the two sides of the matching.
	SourceSchema *Schema
	TargetSchema *Schema
	// DB is the generated source instance.
	DB *Instance
	// Matching holds the correspondences and possible mappings.
	Matching *Matching
}

// ScenarioOptions configures NewScenario.
type ScenarioOptions struct {
	// Target is "Excel" (default), "Noris" or "Paragon".
	Target string
	// Mappings is the number of possible mappings h (default 100).
	Mappings int
	// SizeMB scales the synthetic instance (default 100, the paper's size).
	SizeMB float64
	// Seed makes generation deterministic.
	Seed uint64
}

// NewScenario generates the synthetic purchase-order integration scenario used
// by the paper's evaluation (Section VIII).
func NewScenario(opts ScenarioOptions) (*Scenario, error) {
	name := opts.Target
	if name == "" {
		name = string(datagen.TargetExcel)
	}
	target, err := datagen.ParseTarget(name)
	if err != nil {
		return nil, err
	}
	ds, err := datagen.NewDataset(datagen.DatasetOptions{
		Target:      target,
		NumMappings: opts.Mappings,
		SizeMB:      opts.SizeMB,
		Seed:        opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Target:       string(ds.TargetName),
		SourceSchema: ds.Source,
		TargetSchema: ds.Target,
		DB:           ds.DB,
		Matching:     ds.Matching,
	}, nil
}

// Mappings returns the scenario's possible mappings.
func (s *Scenario) Mappings() MappingSet { return s.Matching.Mappings }

// WorkloadQuery returns one of the paper's Table III queries (1–10) if it is
// defined on this scenario's target schema.
func (s *Scenario) WorkloadQuery(id int) (*Query, error) {
	tgt, err := datagen.QueryTarget(id)
	if err != nil {
		return nil, err
	}
	if string(tgt) != s.Target {
		return nil, fmt.Errorf("query Q%d is defined on target %s, scenario uses %s", id, tgt, s.Target)
	}
	return datagen.WorkloadQuery(id)
}

// Query parses an ad-hoc query against the scenario's target schema.
func (s *Scenario) Query(name, text string) (*Query, error) {
	return query.Parse(name, s.TargetSchema, text)
}

// Evaluator returns an evaluator over the scenario's instance and mappings.
//
// Deprecated: use Scenario.NewSession, which caches prepared queries.
func (s *Scenario) Evaluator() *Evaluator { return core.NewEvaluator(s.DB, s.Matching.Mappings) }

// Query service types re-exported from the server layer.  The service turns
// the library into a long-lived system: scenarios register once (paying index
// warm-up at registration), and an HTTP JSON API answers queries through a
// byte-budgeted answer cache with singleflight semantics — N concurrent
// identical requests cost exactly one evaluation.  See DESIGN.md, "Service
// layer".
type (
	// Registry holds named, epoch-versioned scenarios a server answers
	// queries against.
	Registry = server.Registry
	// RegisteredScenario is one registry entry; mutate its data only through
	// RegisteredScenario.AppendRow (or Bump), which invalidates cached
	// answers by advancing the epoch.
	RegisteredScenario = server.Scenario
	// RegisterOptions tunes Registry.Register.
	RegisterOptions = server.RegisterOptions
	// Server is the query service: an http.Handler with admission control
	// plus the transport-free Server.Do used in-process.
	Server = server.Server
	// ServerConfig tunes a Server (evaluation slots, request timeout, cache
	// byte budget, per-evaluation parallelism).
	ServerConfig = server.Config
	// QueryRequest is the body of POST /v1/query.
	QueryRequest = server.Request
	// QueryResponse is the body of a successful POST /v1/query.
	QueryResponse = server.Response
	// TenantQoS is one tenant's QoS configuration in ServerConfig.Tenants:
	// its weight over the shared admission rate and fair queue, and its
	// default priority class ("interactive" or "batch").
	TenantQoS = server.TenantQoS
)

// RetryAfter extracts the server's wait hint from an error returned by
// Server.Do (zero when the error carries none) — the in-process mirror of the
// HTTP Retry-After header on 429 responses.
func RetryAfter(err error) time.Duration { return server.RetryAfter(err) }

// Sharded-evaluation types.  The in-process layer (ShardSpec + WithShards)
// partitions one relation across N shard slices inside a single process and
// merges per-shard answer streams bit-identically; the multi-node layer
// (Coordinator + ServerConfig.Shard) runs each slice as its own urm-serve
// node behind a coordinator with lease-based shard ownership.  See DESIGN.md,
// "Sharded evaluation".
type (
	// ShardSpec declares how one relation partitions: which relation and
	// column, how many shards, and the partitioner kind.
	ShardSpec = shard.Spec
	// ShardKind selects the partitioner: HashSharding or RangeSharding.
	ShardKind = shard.Kind
	// ShardIdentity declares a server's placement in a partitioned
	// deployment (ServerConfig.Shard).
	ShardIdentity = server.ShardIdentity
	// Coordinator is the multi-node query front door: an http.Handler owning
	// the shard map and no data, fanning queries out to lease-owning shard
	// nodes and merging their answer streams bit-identically.
	Coordinator = server.Coordinator
	// CoordinatorConfig tunes NewCoordinator.
	CoordinatorConfig = server.CoordinatorConfig
	// LeaseTable tracks lease-based shard ownership from node heartbeats.
	LeaseTable = server.LeaseTable
	// LeaseRequest is one shard node's heartbeat, the body of the
	// coordinator's POST /v1/lease.
	LeaseRequest = server.LeaseRequest
	// LeaseResponse acknowledges a heartbeat and carries the cadence the
	// coordinator expects.
	LeaseResponse = server.LeaseResponse
)

// Shard partitioner kinds.
const (
	// HashSharding routes rows by value hash — balanced, placement-free.
	HashSharding = shard.KindHash
	// RangeSharding routes rows by contiguous value ranges sampled from the
	// relation at partition time.
	RangeSharding = shard.KindRange
)

// Sharded-evaluation sentinel errors.
var (
	// ErrNotDistributable is returned (HTTP 422) when a query or method
	// cannot be evaluated over a shard partition (o-sharing, top-k,
	// self-joins or aggregates of the partitioned relation).
	ErrNotDistributable = server.ErrNotDistributable
	// ErrShardUnowned is returned by a coordinator (HTTP 503, with a
	// Retry-After hint) when a shard has no live lease owner.
	ErrShardUnowned = server.ErrShardUnowned
	// ErrShardMismatch is returned by a coordinator (HTTP 502) when shard
	// responses disagree on the deterministic front half of the evaluation.
	ErrShardMismatch = server.ErrShardMismatch
)

// ParseShardKind converts a partitioner-kind name ("hash", "range") into a
// ShardKind.
func ParseShardKind(s string) (ShardKind, error) { return shard.ParseKind(s) }

// NewCoordinator builds a multi-node coordinator: shard nodes heartbeat POST
// /v1/lease, queries fan out to the current lease owners and merge.  With a
// store the lease table survives coordinator restarts.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) { return server.NewCoordinator(cfg) }

// ShardSlice returns a copy of the scenario holding only shard `index` of the
// spec's partition: the named relation keeps only the rows the partitioner
// routes to that shard, every other relation is shared by reference.  Shard
// nodes built from the same seed hold slices that together exactly partition
// the full scenario, which is what the coordinator's merge relies on.
func (s *Scenario) ShardSlice(spec ShardSpec, index int) (*Scenario, error) {
	p, err := shard.NewPartitioner(s.DB, spec)
	if err != nil {
		return nil, err
	}
	slice, err := p.Slice(s.DB, index)
	if err != nil {
		return nil, err
	}
	out := *s
	out.DB = slice
	return &out, nil
}

// ParseTenantSpec parses the "weight[/priority]" per-tenant configuration
// syntax used by urm-serve's -tenants flag, e.g. "4/interactive".
func ParseTenantSpec(name, spec string) (TenantQoS, error) {
	return server.ParseTenantSpec(name, spec)
}

// Durable-store types re-exported from the store layer.  A registry built
// with NewRegistryWithStore writes every registration, appended row and epoch
// bump through a per-scenario checksummed write-ahead log (with periodic
// snapshots that truncate it), so scenarios survive restarts and crashes;
// Registry.Recover rebuilds them at boot.  See DESIGN.md, "Durability and
// recovery".
type (
	// Store is an open durable data directory.
	Store = store.Store
	// StoreOptions tunes OpenStore (per-record fsync, snapshot cadence).
	StoreOptions = store.Options
	// RecoveryStats summarizes one Registry.Recover call.
	RecoveryStats = server.RecoveryStats
)

// Durable-store sentinel errors.
var (
	// ErrCorruptStore marks on-disk state that failed a checksum or decode;
	// recovery quarantines the affected scenario rather than serving from it.
	ErrCorruptStore = store.ErrCorrupt
	// ErrNewerStoreFormat is returned by OpenStore when the data directory was
	// written by a newer build than this one can read.
	ErrNewerStoreFormat = store.ErrNewerFormat
	// ErrQuarantined is returned (HTTP 503) for queries against a scenario
	// whose on-disk state failed recovery.
	ErrQuarantined = server.ErrQuarantined
	// ErrRecovering is returned (HTTP 503) while a server is still replaying
	// its store at boot.
	ErrRecovering = server.ErrRecovering
)

// OpenStore opens (creating if needed) a durable scenario store rooted at
// dir, verifying its on-disk format version.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// NewRegistry returns an empty scenario registry.
func NewRegistry() *Registry { return server.NewRegistry() }

// NewRegistryWithStore returns a registry whose registrations and mutations
// write through to the durable store.  Call Registry.Recover before serving
// to rebuild what the store already holds.
func NewRegistryWithStore(st *Store) *Registry { return server.NewRegistryWithStore(st) }

// NewServer builds a query server over the registry.
func NewServer(reg *Registry, cfg ServerConfig) *Server { return server.New(reg, cfg) }

// Register adds the scenario to a registry under the given name, optionally
// warming every base-relation index so no request pays first-build latency.
func (s *Scenario) Register(ctx context.Context, reg *Registry, name string, opts RegisterOptions) (*RegisteredScenario, error) {
	if opts.TargetLabel == "" {
		opts.TargetLabel = s.Target
	}
	return reg.Register(ctx, name, s.TargetSchema, s.DB, s.Matching.Mappings, opts)
}
