// Ecommerce demonstrates the paper's full evaluation scenario: a purchase-
// order target schema (Excel, as shipped with COMA++) is matched against a
// TPC-H-style source database, the uncertain matching is expanded into 100
// possible mappings, and the paper's workload queries are answered
// probabilistically through one session with the different evaluation
// algorithms.
//
// Run with:
//
//	go run ./examples/ecommerce
//	go run ./examples/ecommerce -size 2 -mappings 10   # quick run (CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	urm "github.com/probdb/urm"
)

func main() {
	mappings := flag.Int("mappings", 100, "number of possible mappings h")
	sizeMB := flag.Float64("size", 40, "source instance scale in MB")
	flag.Parse()

	ctx := context.Background()
	fmt.Printf("building the Excel purchase-order scenario (TPC-H source, %d possible mappings)...\n", *mappings)
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   "Excel",
		Mappings: *mappings,
		SizeMB:   *sizeMB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("source: %d relations, %d rows; target: %s with %d attributes\n",
		len(scenario.SourceSchema.Relations), scenario.DB.NumRows(),
		scenario.Target, scenario.TargetSchema.NumAttributes())
	fmt.Printf("matching: %d correspondences, %d possible mappings, o-ratio %.2f\n\n",
		len(scenario.Matching.Correspondences), len(scenario.Mappings()), urm.ORatio(scenario.Mappings()))

	// One session serves every query below: it owns the prepared-query cache,
	// and the instance's base-relation indexes are shared across evaluations.
	sess, err := scenario.NewSession(urm.WithMethod(urm.OSharing))
	if err != nil {
		log.Fatal(err)
	}

	// Q1 of the paper: purchase orders placed by Mary with a given phone
	// number and priority.  Depending on the mapping, "telephone" may be the
	// customer phone or the order contact phone, and "invoiceTo" may be the
	// customer name or the order contact - so answers are probabilistic.
	q1, err := scenario.WorkloadQuery(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q1:", q1)
	pq1, err := sess.PrepareQuery(q1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pq1.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}
	printAnswers(res, 10)

	// An ad-hoc query written directly against the target schema, via the
	// one-shot session convenience.
	res, err = sess.Execute(ctx,
		"SELECT orderNum FROM PO WHERE priority = 2 AND deliverToStreet = '1 Central Road'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nad-hoc: SELECT orderNum FROM PO WHERE priority = 2 AND deliverToStreet = '1 Central Road'")
	printAnswers(res, 10)

	// Compare the evaluation algorithms on Q2 (a Cartesian product query).
	// The query is prepared once; each method re-executes the same compiled
	// front half.
	q2, err := scenario.WorkloadQuery(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmethod comparison on Q2:", q2)
	pq2, err := sess.PrepareQuery(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-10s %10s %10s %12s %10s\n", "method", "answers", "rewrites", "operators", "time")
	for _, method := range []urm.Method{urm.Basic, urm.EBasic, urm.EMQO, urm.QSharing, urm.OSharing} {
		r, err := pq2.Execute(ctx, urm.WithMethod(method))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %10d %10d %12d %10s\n",
			r.Method, len(r.Answers), r.RewrittenQueries, r.Stats.TotalOperators(), r.TotalTime.Round(1000))
	}
}

func printAnswers(res *urm.Result, limit int) {
	fmt.Printf("  %d answers (empty probability %.2f), evaluated in %s\n",
		len(res.Answers), res.EmptyProb, res.TotalTime)
	n := len(res.Answers)
	if n > limit {
		n = limit
	}
	for i := 0; i < n; i++ {
		fmt.Printf("    %-30s p=%.3f\n", res.Answers[i].Tuple, res.Answers[i].Prob)
	}
	if len(res.Answers) > n {
		fmt.Printf("    ... (%d more)\n", len(res.Answers)-n)
	}
}
