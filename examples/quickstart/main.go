// Quickstart reproduces the paper's introductory example (Figures 1-3): two
// small customer schemas are matched automatically, the uncertain matching is
// turned into a set of possible mappings with probabilities, and a
// probabilistic query on the target schema is answered through every mapping.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	urm "github.com/probdb/urm"
)

func main() {
	// The source schema (with data) describes customers of a CRM system.
	source := urm.NewSchema("crm")
	source.MustAddRelation(&urm.RelationSchema{Name: "Customer", Columns: []urm.Column{
		{Name: "cid", Type: urm.TypeInt},
		{Name: "cname"},
		{Name: "ophone"}, // office phone
		{Name: "hphone"}, // home phone
		{Name: "mobile"},
		{Name: "oaddr"}, // office address
		{Name: "haddr"}, // home address
	}})

	// The target schema belongs to a partner application issuing queries.
	target := urm.NewSchema("partner")
	target.MustAddRelation(&urm.RelationSchema{Name: "Person", Columns: []urm.Column{
		{Name: "pname"}, {Name: "phone"}, {Name: "addr"},
	}})

	// Step 1: match the schemas.  The matcher cannot know whether "phone"
	// means the office phone, the home phone or the mobile, so the matching is
	// uncertain: it is represented as possible mappings with probabilities.
	matching, err := urm.Match(source, target, urm.MatchOptions{Mappings: 6, Threshold: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matcher found %d correspondences, derived %d possible mappings (o-ratio %.2f)\n\n",
		len(matching.Correspondences), len(matching.Mappings), urm.ORatio(matching.Mappings))
	for _, m := range matching.Mappings {
		fmt.Printf("  %-3s p=%.3f  %v\n", m.ID, m.Prob, m.Correspondences)
	}

	// Step 2: load the source instance (Figure 2 of the paper).
	db := urm.NewInstance("crm-db")
	customers := urm.NewRelation("Customer", []string{"cid", "cname", "ophone", "hphone", "mobile", "oaddr", "haddr"})
	customers.MustAppend(urm.Tuple{urm.Int(1), urm.String("Alice"), urm.String("123"), urm.String("789"), urm.String("555"), urm.String("aaa"), urm.String("hk")})
	customers.MustAppend(urm.Tuple{urm.Int(2), urm.String("Bob"), urm.String("456"), urm.String("123"), urm.String("556"), urm.String("bbb"), urm.String("hk")})
	customers.MustAppend(urm.Tuple{urm.Int(3), urm.String("Cindy"), urm.String("456"), urm.String("789"), urm.String("557"), urm.String("aaa"), urm.String("aaa")})
	db.AddRelation(customers)

	// Step 3: open a session — the long-lived face of the library — and ask a
	// probabilistic query on the *target* schema.  Which address belongs to
	// the person with phone number 123?  The answer depends on which mapping
	// is correct, so every answer carries a probability.
	ctx := context.Background()
	sess, err := urm.NewSession(target, db, matching.Mappings)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := sess.Prepare("SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		log.Fatal(err)
	}
	res, err := pq.Execute(ctx, urm.WithMethod(urm.OSharing))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", pq.Query())
	for _, a := range res.Answers {
		fmt.Printf("  %-10s probability %.3f\n", a.Tuple, a.Prob)
	}
	if res.EmptyProb > 0 {
		fmt.Printf("  (no answer with probability %.3f)\n", res.EmptyProb)
	}

	// Step 4: the same prepared query under every evaluation method returns
	// the same probabilistic answers; the methods differ only in how much
	// work they share across mappings.  The query was prepared once — each
	// Execute pays only execution and aggregation.
	fmt.Println("\nmethod comparison (same answers, different effort):")
	for _, method := range []urm.Method{urm.Basic, urm.EBasic, urm.QSharing, urm.OSharing} {
		r, err := pq.Execute(ctx, urm.WithMethod(method))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s answers=%d  executed-operators=%d  time=%s\n",
			r.Method, len(r.Answers), r.Stats.TotalOperators(), r.TotalTime)
	}

	// Step 5: stream instead of materializing — the Rows cursor yields
	// answers in canonical order without building the answer slice.
	rows, err := pq.Stream(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nstreamed answers:")
	for rows.Next() {
		a := rows.Answer()
		fmt.Printf("  %-10s probability %.3f\n", a.Tuple, a.Prob)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
