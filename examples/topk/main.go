// Topk demonstrates the probabilistic top-k algorithm of Section VII: when a
// user only needs the k most credible answers, the evaluator can prune the
// exploration of the possible-mapping space and stop early, without computing
// exact probabilities for every candidate tuple.
//
// Run with:
//
//	go run ./examples/topk
//	go run ./examples/topk -size 2 -mappings 10   # quick run (CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	urm "github.com/probdb/urm"
)

func main() {
	mappings := flag.Int("mappings", 100, "number of possible mappings h")
	sizeMB := flag.Float64("size", 40, "source instance scale in MB")
	flag.Parse()

	ctx := context.Background()
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   "Paragon",
		Mappings: *mappings,
		SizeMB:   *sizeMB,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := scenario.NewSession()
	if err != nil {
		log.Fatal(err)
	}

	// Q10 of the paper: how many order/item combinations were invoiced to Mary
	// at the Central Road address?  Each mapping may count differently, so the
	// COUNT query has several probabilistic answers.
	q, err := scenario.WorkloadQuery(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	// The query is prepared once; the full evaluation and every top-k run
	// below reuse the compiled front half.
	pq, err := sess.PrepareQuery(q)
	if err != nil {
		log.Fatal(err)
	}

	// Full o-sharing evaluation: exact probabilities for every answer.
	full, err := pq.Execute(ctx, urm.WithMethod(urm.OSharing))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull o-sharing: %d answers in %s\n", len(full.Answers), full.TotalTime)
	for i, a := range full.Answers {
		if i >= 5 {
			fmt.Printf("  ... (%d more)\n", len(full.Answers)-5)
			break
		}
		fmt.Printf("  count=%-8s p=%.3f\n", a.Tuple, a.Prob)
	}

	// Top-k evaluation for increasing k.  Small k values explore less of the
	// u-trace, run faster, and report lower-bound probabilities that are
	// sufficient to identify the top answers.
	fmt.Println("\ntop-k evaluation:")
	for _, k := range []int{1, 2, 5, 10} {
		res, err := pq.Execute(ctx, urm.WithTopK(k))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d answers=%d  operators=%5d  time=%s\n",
			k, len(res.Answers), res.Stats.TotalOperators(), res.TotalTime)
		for _, a := range res.Answers {
			fmt.Printf("        count=%-8s p>=%.3f\n", a.Tuple, a.Prob)
		}
	}

	fmt.Println("\nnote: top-k probabilities are lower bounds; the algorithm stops as soon")
	fmt.Println("as no other tuple can overtake the reported answers (Algorithm 4).")
}
