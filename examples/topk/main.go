// Topk demonstrates the probabilistic top-k algorithm of Section VII: when a
// user only needs the k most credible answers, the evaluator can prune the
// exploration of the possible-mapping space and stop early, without computing
// exact probabilities for every candidate tuple.
//
// Run with:
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"log"

	urm "github.com/probdb/urm"
)

func main() {
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   "Paragon",
		Mappings: 100,
		SizeMB:   40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Q10 of the paper: how many order/item combinations were invoiced to Mary
	// at the Central Road address?  Each mapping may count differently, so the
	// COUNT query has several probabilistic answers.
	q, err := scenario.WorkloadQuery(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)

	// Full o-sharing evaluation: exact probabilities for every answer.
	full, err := scenario.Evaluator().Evaluate(q, urm.Options{Method: urm.OSharing})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull o-sharing: %d answers in %s\n", len(full.Answers), full.TotalTime)
	for i, a := range full.Answers {
		if i >= 5 {
			fmt.Printf("  ... (%d more)\n", len(full.Answers)-5)
			break
		}
		fmt.Printf("  count=%-8s p=%.3f\n", a.Tuple, a.Prob)
	}

	// Top-k evaluation for increasing k.  Small k values explore less of the
	// u-trace, run faster, and report lower-bound probabilities that are
	// sufficient to identify the top answers.
	fmt.Println("\ntop-k evaluation:")
	for _, k := range []int{1, 2, 5, 10} {
		res, err := urm.EvaluateTopK(q, scenario.Mappings(), scenario.DB, k, urm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%-3d answers=%d  operators=%5d  time=%s\n",
			k, len(res.Answers), res.Stats.TotalOperators(), res.TotalTime)
		for _, a := range res.Answers {
			fmt.Printf("        count=%-8s p>=%.3f\n", a.Tuple, a.Prob)
		}
	}

	fmt.Println("\nnote: top-k probabilities are lower bounds; the algorithm stops as soon")
	fmt.Println("as no other tuple can overtake the reported answers (Algorithm 4).")
}
