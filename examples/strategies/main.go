// Strategies compares the o-sharing operator-selection strategies of
// Section VI-A — Random, SNF (smallest number of partitions first) and SEF
// (smallest entropy first) — on the paper's Q4, reporting evaluation time and
// the number of executed source operators, i.e. a small live version of
// Table IV and Figure 11(f).
//
// Run with:
//
//	go run ./examples/strategies
//	go run ./examples/strategies -size 2 -mappings 10   # quick run (CI)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	urm "github.com/probdb/urm"
)

func main() {
	mappings := flag.Int("mappings", 100, "number of possible mappings h")
	sizeMB := flag.Float64("size", 30, "source instance scale in MB")
	flag.Parse()

	ctx := context.Background()
	scenario, err := urm.NewScenario(urm.ScenarioOptions{
		Target:   "Excel",
		Mappings: *mappings,
		SizeMB:   *sizeMB,
	})
	if err != nil {
		log.Fatal(err)
	}
	q, err := scenario.WorkloadQuery(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", q)
	fmt.Printf("mappings: %d (o-ratio %.2f)\n\n", len(scenario.Mappings()), urm.ORatio(scenario.Mappings()))

	sess, err := scenario.NewSession(urm.WithMethod(urm.OSharing))
	if err != nil {
		log.Fatal(err)
	}
	pq, err := sess.PrepareQuery(q)
	if err != nil {
		log.Fatal(err)
	}

	operatorCount := func(r *urm.Result) int {
		return r.Stats.TotalOperators() - r.Stats.Operators()["scan"]
	}

	fmt.Printf("%-10s %12s %20s %10s\n", "strategy", "answers", "source operators", "time")
	for _, strat := range []urm.Strategy{urm.Random, urm.SNF, urm.SEF} {
		res, err := pq.Execute(ctx, urm.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %20d %10s\n", strat, len(res.Answers), operatorCount(res), res.TotalTime.Round(1000))
	}

	// e-MQO executes the minimal number of source operators (its global plan
	// shares every common subexpression) but pays a heavy planning cost; the
	// paper uses it as the operator-count yardstick in Table IV.
	emqo, err := pq.Execute(ctx, urm.WithMethod(urm.EMQO))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %12d %20d %10s\n", "e-MQO", len(emqo.Answers), operatorCount(emqo), emqo.TotalTime.Round(1000))

	fmt.Println("\nexpected shape (Table IV of the paper): SEF <= SNF << Random in executed")
	fmt.Println("operators, with SNF/SEF close to the e-MQO optimum; Random is slowest.")
}
