package urm

import (
	"context"
	"errors"
	"testing"
)

// sessionFixture builds the running-example session through the public API.
func sessionFixture(t *testing.T) (*Session, MappingSet, *Instance) {
	t.Helper()
	source, target := buildPeopleSchemas()
	matching, err := Match(source, target, MatchOptions{Mappings: 6, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	db := buildPeopleInstance()
	sess, err := NewSession(target, db, matching.Mappings)
	if err != nil {
		t.Fatal(err)
	}
	return sess, matching.Mappings, db
}

// TestSessionMatchesDeprecatedEvaluate pins the migration contract: the
// session API returns answers bit-identical to the deprecated free functions,
// for every method, with and without top-k.
func TestSessionMatchesDeprecatedEvaluate(t *testing.T) {
	sess, maps, db := sessionFixture(t)
	ctx := context.Background()
	const text = "SELECT addr FROM Person WHERE phone = '123'"
	q, err := ParseQuery("q0", sess.Target(), text)
	if err != nil {
		t.Fatal(err)
	}

	pq, err := sess.Prepare(text)
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []Method{Basic, EBasic, EMQO, QSharing, OSharing} {
		want, err := Evaluate(q, maps, db, Options{Method: method})
		if err != nil {
			t.Fatalf("%v deprecated: %v", method, err)
		}
		got, err := pq.Execute(ctx, WithMethod(method))
		if err != nil {
			t.Fatalf("%v session: %v", method, err)
		}
		if len(want.Answers) != len(got.Answers) {
			t.Fatalf("%v: %d answers, want %d", method, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if want.Answers[i].Tuple.Key() != got.Answers[i].Tuple.Key() || want.Answers[i].Prob != got.Answers[i].Prob {
				t.Errorf("%v: answer[%d] = %v, want %v", method, i, got.Answers[i], want.Answers[i])
			}
		}
		if want.EmptyProb != got.EmptyProb {
			t.Errorf("%v: empty prob %v, want %v", method, got.EmptyProb, want.EmptyProb)
		}
	}

	// Top-k through options.
	wantTop, err := EvaluateTopK(q, maps, db, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := pq.Execute(ctx, WithMethod(Basic), WithTopK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTop.Answers) != len(wantTop.Answers) {
		t.Fatalf("topk: %d answers, want %d", len(gotTop.Answers), len(wantTop.Answers))
	}
	for i := range wantTop.Answers {
		if wantTop.Answers[i].Tuple.Key() != gotTop.Answers[i].Tuple.Key() || wantTop.Answers[i].Prob != gotTop.Answers[i].Prob {
			t.Errorf("topk answer[%d] = %v, want %v", i, gotTop.Answers[i], wantTop.Answers[i])
		}
	}
}

// TestSessionStream checks the public streaming path: Rows yields exactly the
// materialized answers, supports early Close, and works for top-k.
func TestSessionStream(t *testing.T) {
	sess, _, _ := sessionFixture(t)
	ctx := context.Background()
	const text = "SELECT addr FROM Person WHERE phone = '123'"

	res, err := sess.Execute(ctx, text, WithMethod(QSharing), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sess.Stream(ctx, text, WithMethod(QSharing), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	i := 0
	for rows.Next() {
		a := rows.Answer()
		if i >= len(res.Answers) {
			t.Fatalf("stream yielded more than %d answers", len(res.Answers))
		}
		if a.Tuple.Key() != res.Answers[i].Tuple.Key() || a.Prob != res.Answers[i].Prob {
			t.Errorf("streamed[%d] = %v, want %v", i, a, res.Answers[i])
		}
		i++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(res.Answers) {
		t.Errorf("streamed %d answers, want %d", i, len(res.Answers))
	}
	if rows.EmptyProb() != res.EmptyProb {
		t.Errorf("stream empty prob %v, want %v", rows.EmptyProb(), res.EmptyProb)
	}

	// Early close stops iteration.
	rows2, err := sess.Stream(ctx, text)
	if err != nil {
		t.Fatal(err)
	}
	if rows2.Len() > 0 {
		if !rows2.Next() {
			t.Fatal("Next on fresh cursor returned false")
		}
	}
	rows2.Close()
	if rows2.Next() {
		t.Error("Next after Close returned true")
	}
}

// TestSessionPreparedReuse: preparing the same (canonically equal) text twice
// returns the same prepared query, and session defaults apply.
func TestSessionPreparedReuse(t *testing.T) {
	source, target := buildPeopleSchemas()
	matching, err := Match(source, target, MatchOptions{Mappings: 6, Threshold: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	db := buildPeopleInstance()
	sess, err := NewSession(target, db, matching.Mappings, WithMethod(QSharing), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := sess.Prepare("SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sess.Prepare("SELECT  addr  FROM Person WHERE phone='123'")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("canonically equal texts prepared twice")
	}
	if p1.Text() == "" {
		t.Error("prepared query has no canonical text")
	}
	if _, err := p1.Execute(context.Background()); err != nil {
		t.Fatalf("execute with session defaults: %v", err)
	}
	if n, err := p1.Partitions(); err != nil || n < 1 {
		t.Errorf("partitions = %d, %v", n, err)
	}
}

// TestSessionErrors pins the typed sentinels and option validation at the
// facade level.
func TestSessionErrors(t *testing.T) {
	sess, maps, db := sessionFixture(t)
	ctx := context.Background()

	if _, err := sess.Prepare("SELECT FROM nonsense"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bad query: err = %v, want ErrBadQuery", err)
	}
	pq, err := sess.Prepare("SELECT addr FROM Person WHERE phone = '123'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Execute(ctx, WithTopK(0)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("WithTopK(0): err = %v, want ErrBadOptions", err)
	}
	if _, err := pq.Execute(ctx, WithParallelism(-2)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative parallelism: err = %v, want ErrBadOptions", err)
	}
	if _, err := pq.Execute(ctx, WithMethod(Method(99))); !errors.Is(err, ErrBadOptions) {
		t.Errorf("unknown method: err = %v, want ErrBadOptions", err)
	}
	if _, err := pq.Stream(ctx, WithStrategy(Strategy(9))); !errors.Is(err, ErrBadOptions) {
		t.Errorf("unknown strategy: err = %v, want ErrBadOptions", err)
	}

	// Session construction validation.
	if _, err := NewSession(nil, db, maps); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewSession(sess.Target(), nil, maps); err == nil {
		t.Error("nil instance accepted")
	}
	if _, err := NewSession(sess.Target(), db, nil); err == nil {
		t.Error("empty mapping set accepted")
	}
	if _, err := NewSession(sess.Target(), db, maps, WithParallelism(-1)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("bad session defaults: err = %v, want ErrBadOptions", err)
	}

	// Cancelled context aborts.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pq.Execute(cancelled); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled execute: err = %v, want context.Canceled", err)
	}
}

// TestSessionWithShards pins the facade sharding contract: executing with
// WithShards routes through the scatter-gather evaluator and returns answers
// bit-identical to the unsharded path (exact float equality — the merge
// replays the same addition sequence), o-sharing falls back transparently,
// and Stream refuses to combine with shards.
func TestSessionWithShards(t *testing.T) {
	sess, _, _ := sessionFixture(t)
	ctx := context.Background()
	const text = "SELECT addr FROM Person WHERE phone = '123'"
	spec := ShardSpec{Relation: "Customer", Column: "cid", Shards: 4, Kind: HashSharding}

	for _, method := range []Method{Basic, EBasic, EMQO, QSharing, OSharing} {
		want, err := sess.Execute(ctx, text, WithMethod(method))
		if err != nil {
			t.Fatalf("%v unsharded: %v", method, err)
		}
		got, err := sess.Execute(ctx, text, WithMethod(method), WithShards(spec))
		if err != nil {
			t.Fatalf("%v sharded: %v", method, err)
		}
		if len(got.Answers) != len(want.Answers) {
			t.Fatalf("%v: %d answers, want %d", method, len(got.Answers), len(want.Answers))
		}
		for i := range want.Answers {
			if want.Answers[i].Tuple.Key() != got.Answers[i].Tuple.Key() || want.Answers[i].Prob != got.Answers[i].Prob {
				t.Errorf("%v: answer[%d] = %v, want %v", method, i, got.Answers[i], want.Answers[i])
			}
		}
		if want.EmptyProb != got.EmptyProb {
			t.Errorf("%v: empty prob %v, want %v", method, got.EmptyProb, want.EmptyProb)
		}
	}

	// Top-k composes with shards.
	wantTop, err := sess.Execute(ctx, text, WithTopK(1))
	if err != nil {
		t.Fatal(err)
	}
	gotTop, err := sess.Execute(ctx, text, WithTopK(1), WithShards(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTop.Answers) != len(wantTop.Answers) || (len(wantTop.Answers) > 0 && gotTop.Answers[0].Prob != wantTop.Answers[0].Prob) {
		t.Errorf("topk sharded = %v, want %v", gotTop.Answers, wantTop.Answers)
	}

	// Validation: bad specs and Stream are rejected with ErrBadOptions.
	if _, err := sess.Execute(ctx, text, WithShards(ShardSpec{Relation: "Customer", Column: "cid"})); !errors.Is(err, ErrBadOptions) {
		t.Errorf("zero-shard spec: err = %v, want ErrBadOptions", err)
	}
	if _, err := sess.Stream(ctx, text, WithShards(spec)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Stream with shards: err = %v, want ErrBadOptions", err)
	}
}

// TestScenarioShardSlice pins that slices of a generated scenario exactly
// partition the sharded relation and leave the others shared.
func TestScenarioShardSlice(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Target: "Excel", Mappings: 4, SizeMB: 1})
	if err != nil {
		t.Fatal(err)
	}
	rel := s.DB.Relation(s.DB.RelationNames()[0])
	spec := ShardSpec{Relation: rel.Name, Column: rel.Columns[0], Shards: 3, Kind: HashSharding}
	total := 0
	for i := 0; i < spec.Shards; i++ {
		slice, err := s.ShardSlice(spec, i)
		if err != nil {
			t.Fatal(err)
		}
		r := slice.DB.Relation(rel.Name)
		if r == nil {
			t.Fatalf("shard %d lost relation %q", i, rel.Name)
		}
		total += r.NumRows()
	}
	if total != rel.NumRows() {
		t.Errorf("slices hold %d rows of %q, want %d (exact partition)", total, rel.Name, rel.NumRows())
	}
	if _, err := s.ShardSlice(spec, spec.Shards); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

// TestScenarioNewSession wires the scenario generator into the session API.
func TestScenarioNewSession(t *testing.T) {
	s, err := NewScenario(ScenarioOptions{Target: "Excel", Mappings: 8, SizeMB: 2})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.NewSession(WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.WorkloadQuery(1)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sess.PrepareQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pq.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mass := res.EmptyProb
	for _, a := range res.Answers {
		mass += a.Prob
	}
	if mass <= 0 || mass > 1+1e-6 {
		t.Errorf("probability mass = %g", mass)
	}
}
